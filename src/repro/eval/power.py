"""Detection-power (type-2 error) evaluation of the platform.

The statistical tests' purpose is "to minimize the probability of [the
type 2] error" (Section II-A), yet neither the paper nor the NIST suite
quantifies the detection power of an on-the-fly configuration.  This module
estimates it by Monte Carlo: many sequences are drawn from a parameterised
weakness model, pushed through the functional hardware model and the software
verifier, and the fraction of flagged sequences is reported per weakness
level.  The companion benchmark (``bench_detection_power.py``) uses it to
show the trade-off behind the paper's three sequence lengths: longer designs
detect smaller deviations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.configs import DesignPoint, get_design
from repro.hwtests.block import UnifiedTestingBlock
from repro.sw.routines import SoftwareVerifier
from repro.trng.biased import BiasedSource
from repro.trng.correlated import CorrelatedSource
from repro.trng.ideal import IdealSource
from repro.trng.source import EntropySource

__all__ = ["PowerPoint", "detection_rate", "bias_power_curve", "correlation_power_curve", "false_alarm_rate"]


@dataclass(frozen=True)
class PowerPoint:
    """Detection rate of one design at one weakness level."""

    design: str
    parameter: float
    trials: int
    detections: int

    @property
    def detection_rate(self) -> float:
        """Fraction of trials in which at least one test rejected."""
        return self.detections / self.trials if self.trials else 0.0


def _evaluate_many(
    design: DesignPoint,
    source_factory: Callable[[int], EntropySource],
    trials: int,
    alpha: float,
) -> int:
    """Number of trials (out of ``trials``) flagged by the design."""
    params = design.parameters
    block = UnifiedTestingBlock(params, tests=design.tests)
    verifier = SoftwareVerifier(params, tests=design.tests, alpha=alpha)
    detections = 0
    for trial in range(trials):
        bits = source_factory(trial).generate(params.n).bits
        block.accelerated_process_sequence(bits)
        verdicts = verifier.verify(block.register_file)
        if any(not verdict.passed for verdict in verdicts.values()):
            detections += 1
    return detections


def detection_rate(
    design_name: str,
    source_factory: Callable[[int], EntropySource],
    trials: int = 50,
    alpha: float = 0.01,
) -> float:
    """Monte-Carlo detection rate of ``design_name`` against a weakness model.

    ``source_factory(trial)`` must return a fresh source for each trial
    (vary the seed with the trial index for reproducible independence).
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    design = get_design(design_name)
    detections = _evaluate_many(design, source_factory, trials, alpha)
    return detections / trials


def false_alarm_rate(design_name: str, trials: int = 50, alpha: float = 0.01, seed: int = 0) -> float:
    """Type-1 error estimate: detection rate against an ideal source."""
    return detection_rate(
        design_name,
        lambda trial: IdealSource(seed=seed + trial),
        trials=trials,
        alpha=alpha,
    )


def bias_power_curve(
    design_name: str,
    bias_levels: Sequence[float],
    trials: int = 50,
    alpha: float = 0.01,
    seed: int = 1000,
) -> List[PowerPoint]:
    """Detection power versus the bias P(1) of an independent-bit source."""
    design = get_design(design_name)
    points = []
    for level in bias_levels:
        detections = _evaluate_many(
            design,
            lambda trial, level=level: BiasedSource(level, seed=seed + trial),
            trials,
            alpha,
        )
        points.append(PowerPoint(design_name, float(level), trials, detections))
    return points


def correlation_power_curve(
    design_name: str,
    repeat_probabilities: Sequence[float],
    trials: int = 50,
    alpha: float = 0.01,
    seed: int = 2000,
) -> List[PowerPoint]:
    """Detection power versus the repeat probability of a Markov source."""
    points = []
    for level in repeat_probabilities:
        detections = _evaluate_many(
            get_design(design_name),
            lambda trial, level=level: CorrelatedSource(level, seed=seed + trial),
            trials,
            alpha,
        )
        points.append(PowerPoint(design_name, float(level), trials, detections))
    return points
