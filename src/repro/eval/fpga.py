"""Spartan-6 FPGA resource and timing estimation.

The paper synthesises its Verilog with Xilinx ISE 14.7 for a Spartan-6
XC6SLX45.  Without the vendor tool chain, this module converts the hardware
model's component-level resource report into the same quantities (occupied
slices, flip-flops, LUTs, maximum frequency) with a simple technology model
whose constants are calibrated once against the paper's own Table III; the
benchmarks then check that the *shape* across the eight design points
(ordering, relative growth) is preserved.

Model
-----
* flip-flops: taken directly from the component declarations;
* LUTs: the sum of the per-component combinational estimates;
* slices: a Spartan-6 slice holds four 6-input LUTs and eight flip-flops, but
  packing is never perfect — the observed packing density in the paper's own
  results is about 3 LUTs (and well under 8 FFs) per slice, so
  ``slices = max(LUTs / 3, FFs / 7)``;
* maximum frequency: the critical path runs through the widest counter's
  carry chain plus the read-out multiplexer, modelled as an affine function
  of those two sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hwsim.resources import ResourceReport

__all__ = ["FpgaTechnologyModel", "SPARTAN6_MODEL", "FpgaEstimate", "estimate_fpga"]

#: Number of slices in the Spartan-6 XC6SLX45 used by the paper (for the
#: utilisation percentage column of Table III).
XC6SLX45_SLICES = 6822


@dataclass(frozen=True)
class FpgaTechnologyModel:
    """Calibration constants of the FPGA estimation model."""

    name: str
    luts_per_slice: float = 3.0
    ffs_per_slice: float = 7.0
    #: Affine timing model: period_ns = base + carry_ns_per_bit · max_counter_width
    #: + mux_ns_per_value · readout_values.
    base_period_ns: float = 5.3
    carry_ns_per_bit: float = 0.12
    mux_ns_per_value: float = 0.010
    device_slices: int = XC6SLX45_SLICES


#: Constants calibrated against the paper's Table III.
SPARTAN6_MODEL = FpgaTechnologyModel(name="Spartan-6 XC6SLX45 (ISE 14.7)")


@dataclass(frozen=True)
class FpgaEstimate:
    """FPGA implementation estimate for one hardware block."""

    label: str
    slices: int
    flip_flops: int
    luts: int
    max_frequency_mhz: float
    utilisation_percent: float

    def as_row(self) -> dict:
        """One row of the Table III reproduction."""
        return {
            "design": self.label,
            "slices": self.slices,
            "utilisation_percent": round(self.utilisation_percent, 1),
            "ff": self.flip_flops,
            "lut": self.luts,
            "max_freq_mhz": round(self.max_frequency_mhz, 1),
        }


def estimate_fpga(
    report: ResourceReport, model: FpgaTechnologyModel = SPARTAN6_MODEL
) -> FpgaEstimate:
    """Estimate Spartan-6 resources for a hardware resource report."""
    luts = int(math.ceil(report.lut_estimate))
    ffs = int(report.flip_flops)
    slices = int(math.ceil(max(luts / model.luts_per_slice, ffs / model.ffs_per_slice)))
    period_ns = (
        model.base_period_ns
        + model.carry_ns_per_bit * report.max_counter_width
        + model.mux_ns_per_value * report.readout_values
    )
    max_frequency = 1000.0 / period_ns
    utilisation = 100.0 * slices / model.device_slices
    return FpgaEstimate(
        label=report.label,
        slices=slices,
        flip_flops=ffs,
        luts=luts,
        max_frequency_mhz=max_frequency,
        utilisation_percent=utilisation,
    )
