"""Per-test detection-attribution tables (the paper's Table-style comparison).

The design-point tables of the paper (Table I / Table III) say which tests a
design *implements*; a detection campaign says which tests actually *catch*
which threat.  These helpers pivot a campaign's cells into that comparison:
one row per (scenario, design), one column per NIST test number, each entry
the number of trials in which that test flagged the threat — immediately
showing, e.g., that the frequency test (1) catches a stuck-at source while
the runs test (3) is what catches an alternating one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation only, keeps eval below campaign
    from repro.campaign.report import CampaignCell

__all__ = [
    "attribution_tests",
    "attribution_rows",
    "format_attribution_table",
    "format_rows",
]


def format_rows(rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> str:
    """Render dict rows as a fixed-width text table.

    The shared renderer behind every comparison table in this layer (and the
    campaign report's summary table).
    """
    if not rows:
        return "(no rows)"
    widths = {
        column: max(len(str(column)), max(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(
            " | ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def attribution_tests(cells: "Iterable[CampaignCell]") -> Tuple[int, ...]:
    """All NIST test numbers implemented by any design in the campaign."""
    numbers = set()
    for cell in cells:
        numbers.update(cell.tests)
    return tuple(sorted(numbers))


def attribution_rows(
    cells: "Sequence[CampaignCell]",
    tests: Optional[Sequence[int]] = None,
) -> Tuple[List[Dict[str, object]], List[str]]:
    """Pivot cells into (rows, columns) for the attribution table.

    Entries read ``flagged/trials`` when a test detected the scenario, ``.``
    when the design implements the test but it never flagged, and blank when
    the design does not implement the test at all.  ``first`` lists the tests
    that raised the initial alarm.
    """
    tests = tuple(tests) if tests is not None else attribution_tests(cells)
    columns = ["scenario", "design", *[f"t{number}" for number in tests], "first"]
    rows = []
    for cell in cells:
        row: Dict[str, object] = {"scenario": cell.scenario, "design": cell.design}
        for number in tests:
            if number not in cell.tests:
                row[f"t{number}"] = ""
            elif number in cell.attribution:
                row[f"t{number}"] = f"{cell.attribution[number]}/{cell.trials}"
            else:
                row[f"t{number}"] = "."
        row["first"] = (
            ",".join(str(number) for number in sorted(cell.first_detectors)) or "-"
        )
        rows.append(row)
    return rows, columns


def format_attribution_table(
    cells: "Sequence[CampaignCell]",
    tests: Optional[Sequence[int]] = None,
) -> str:
    """Render the per-test attribution matrix as a fixed-width table."""
    rows, columns = attribution_rows(cells, tests)
    return format_rows(rows, columns)
