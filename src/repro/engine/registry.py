"""Uniform test registry: NIST, FIPS and hardware-model tests, one interface.

The paper's three test layers (the reference NIST suite, the FIPS 140-2
baseline battery and the HW/SW platform model) historically each had their
own dispatch structure — a hard-coded dict in ``nist/suite.py``, a fixed
list in ``fips/battery.py`` and ad-hoc per-design wiring in ``hwtests/``.
This module replaces those with one :class:`TestRegistry` of
:class:`RegisteredTest` entries sharing the :class:`StatisticalTest`
protocol: every test exposes a stable id, a human-readable name and a
``run(context, **params) -> TestResult`` entry point fed from a shared
:class:`~repro.engine.context.SequenceContext`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.engine import heavy as _heavy
from repro.engine.context import BatchContext, SequenceContext
from repro.fips import battery as _fips
from repro.nist.approximate_entropy import approximate_entropy_test_from_context
from repro.nist.block_frequency import block_frequency_test_from_context
from repro.nist.common import TestResult
from repro.nist.cusum import cumulative_sums_test_from_context
from repro.nist.dft import dft_test
from repro.nist.frequency import frequency_test_from_context
from repro.nist.linear_complexity import linear_complexity_test
from repro.nist.longest_run import longest_run_test_from_context
from repro.nist.nonoverlapping import non_overlapping_template_test_from_context
from repro.nist.overlapping import overlapping_template_test_from_context
from repro.nist.random_excursions import random_excursions_test
from repro.nist.random_excursions_variant import random_excursions_variant_test
from repro.nist.rank import binary_matrix_rank_test
from repro.nist.runs import runs_test_from_context
from repro.nist.serial import serial_test_from_context
from repro.nist.suite import NIST_TEST_NAMES
from repro.nist.universal import universal_test

__all__ = [
    "StatisticalTest",
    "RegisteredTest",
    "TestRegistry",
    "TestSpec",
    "DEFAULT_REGISTRY",
    "NIST_NUMBER_TO_ID",
    "build_default_registry",
]

#: Anything that resolves to a registered test: a test object, a canonical
#: id or alias string, or a NIST test number.
TestSpec = Union["RegisteredTest", str, int]


@runtime_checkable
class StatisticalTest(Protocol):
    """The uniform interface every registered test implements."""

    id: str
    name: str

    def run(self, context: SequenceContext, **params) -> TestResult:
        """Evaluate the test on a shared-statistic context."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class RegisteredTest:
    """A test behind the uniform interface.

    Attributes
    ----------
    id:
        Canonical id, namespaced by layer (``nist.serial``, ``fips.poker``,
        ``hw.platform``).
    name:
        Human-readable name.
    runner:
        ``runner(context, **params) -> TestResult``.
    aliases:
        Alternative lookup keys (the NIST number, its string form, ...).
    expensive:
        True for tests whose scalar path is dominated by per-sequence work
        (matrix rank, Berlekamp–Massey, ...).  When such a test has no
        usable ``batch_runner`` the executor may fan it out over a process
        pool as an explicit opt-in fallback (``processes > 1``).
    batch_runner:
        Optional batch-native entry point
        ``batch_runner(batch, **params) -> List[TestResult]`` evaluating the
        whole :class:`~repro.engine.context.BatchContext` at once (one
        result per sequence, bit-identical to ``runner``).  May raise
        :class:`~repro.engine.heavy.BatchFallback` for parameters outside
        its fast path.
    """

    id: str
    name: str
    runner: Callable[..., TestResult]
    aliases: Tuple[TestSpec, ...] = ()
    expensive: bool = False
    batch_runner: Optional[Callable[..., List[TestResult]]] = None

    def run(self, context: SequenceContext, **params) -> TestResult:
        return self.runner(context, **params)

    def run_batch(self, batch: BatchContext, **params) -> List[TestResult]:
        """Evaluate the whole batch at once (batch-native tests only)."""
        if self.batch_runner is None:
            raise ValueError(f"test {self.id!r} has no batch-native runner")
        return self.batch_runner(batch, **params)


class TestRegistry:
    """Lookup table of registered tests, keyed by id and aliases."""

    #: Not a pytest test class, despite the name (prevents collection warnings).
    __test__ = False

    def __init__(self) -> None:
        self._tests: Dict[str, RegisteredTest] = {}
        self._aliases: Dict[TestSpec, str] = {}

    def register(self, test: RegisteredTest, replace: bool = False) -> RegisteredTest:
        """Add a test; aliases must not collide unless ``replace`` is set."""
        keys = [test.id, *test.aliases]
        if not replace:
            for key in keys:
                if key in self._aliases:
                    raise ValueError(f"test key {key!r} already registered")
        self._tests[test.id] = test
        for key in keys:
            self._aliases[key] = test.id
        return test

    def resolve(self, spec: TestSpec) -> RegisteredTest:
        """Resolve a test object, canonical id, alias or NIST number."""
        if isinstance(spec, RegisteredTest):
            return spec
        canonical = self._aliases.get(spec)
        if canonical is None:
            raise ValueError(f"unknown test {spec!r}")
        return self._tests[canonical]

    def ids(self) -> Tuple[str, ...]:
        """Canonical ids of all registered tests, in registration order."""
        return tuple(self._tests)

    def __contains__(self, spec: TestSpec) -> bool:
        return isinstance(spec, RegisteredTest) or spec in self._aliases

    def __iter__(self) -> Iterator[RegisteredTest]:
        return iter(self._tests.values())

    def __len__(self) -> int:
        return len(self._tests)


# ---------------------------------------------------------------------------
# Default registry: the 15 NIST tests, the 4 FIPS tests, the hw-model battery
# ---------------------------------------------------------------------------

#: NIST test number (Table I of the paper) -> canonical registry id.
NIST_NUMBER_TO_ID: Dict[int, str] = {
    1: "nist.frequency",
    2: "nist.block_frequency",
    3: "nist.runs",
    4: "nist.longest_run",
    5: "nist.rank",
    6: "nist.dft",
    7: "nist.non_overlapping_template",
    8: "nist.overlapping_template",
    9: "nist.universal",
    10: "nist.linear_complexity",
    11: "nist.serial",
    12: "nist.approximate_entropy",
    13: "nist.cumulative_sums",
    14: "nist.random_excursions",
    15: "nist.random_excursions_variant",
}


def _reference_runner(reference: Callable[..., TestResult]) -> Callable[..., TestResult]:
    """Adapt a bits-based reference test to the context interface.

    Used for the tests without shared sub-statistics (rank, DFT, universal,
    linear complexity, random excursions); they read the raw bits off the
    context, so results are trivially identical to the direct call.
    """

    def runner(context: SequenceContext, **params) -> TestResult:
        return reference(context.bits, **params)

    runner.__name__ = f"context_{reference.__name__}"
    return runner


def _fips_runner(context_test: Callable[[SequenceContext], _fips.FipsTestResult]):
    """Adapt a FIPS pass/fail test to the :class:`TestResult` interface.

    FIPS tests have no significance level, so the P-value degenerates to
    1.0 (accept) / 0.0 (reject); the native result rides in ``details``.
    """

    def runner(context: SequenceContext) -> TestResult:
        outcome = context_test(context)
        return TestResult(
            name=outcome.name,
            statistic=outcome.statistic,
            p_value=1.0 if outcome.passed else 0.0,
            details={"fips": outcome, **outcome.details},
        )

    runner.__name__ = f"uniform_{context_test.__name__}"
    return runner


_HW_PLATFORM_CACHE: Dict[Tuple[str, float], object] = {}


def _hw_platform_runner(context: SequenceContext, design: str = "n65536_high",
                        alpha: float = 0.01) -> TestResult:
    """Run the HW/SW platform model (functional path) as a registry test.

    The sequence is pushed through the unified hardware testing block's
    vectorised functional model and verified by the 16-bit software routines;
    the aggregated verdict is reported as a degenerate P-value (1.0 pass /
    0.0 fail) with the full :class:`~repro.core.results.PlatformReport` in
    ``details``.
    """
    from repro.core.platform import OnTheFlyPlatform  # deferred: avoids cycle

    key = (design, alpha)
    platform = _HW_PLATFORM_CACHE.get(key)
    if platform is None:
        platform = _HW_PLATFORM_CACHE.setdefault(key, OnTheFlyPlatform(design, alpha=alpha))
    if context.n != platform.n:
        raise ValueError(f"expected {platform.n} bits, got {context.n}")
    report = platform.evaluate_sequence(context.bits, accelerated=True)
    return TestResult(
        name=f"HW/SW platform ({design})",
        statistic=float(len(report.failing_tests)),
        p_value=1.0 if report.passed else 0.0,
        details={"platform_report": report, "failing_tests": report.failing_tests},
    )


def build_default_registry() -> TestRegistry:
    """The registry wiring all three test layers behind one interface."""
    registry = TestRegistry()

    nist_runners: Dict[int, Callable[..., TestResult]] = {
        1: frequency_test_from_context,
        2: block_frequency_test_from_context,
        3: runs_test_from_context,
        4: longest_run_test_from_context,
        5: _reference_runner(binary_matrix_rank_test),
        6: _reference_runner(dft_test),
        7: non_overlapping_template_test_from_context,
        8: overlapping_template_test_from_context,
        9: _reference_runner(universal_test),
        10: _reference_runner(linear_complexity_test),
        11: serial_test_from_context,
        12: approximate_entropy_test_from_context,
        13: cumulative_sums_test_from_context,
        14: _reference_runner(random_excursions_test),
        15: _reference_runner(random_excursions_variant_test),
    }
    # The five heavyweight tests: batch-native kernels evaluate a whole
    # packed batch at once (the pool-free default); the scalar runner stays
    # the per-sequence reference, and `expensive` keeps the process pool
    # available as an explicit opt-in fallback.
    batch_runners: Dict[int, Callable[..., List[TestResult]]] = {
        5: _heavy.batch_rank,
        6: _heavy.batch_dft,
        9: _heavy.batch_universal,
        10: _heavy.batch_linear_complexity,
        14: _heavy.batch_random_excursions,
        15: _heavy.batch_random_excursions_variant,
    }
    pool_candidates = set(batch_runners)
    for number, runner in nist_runners.items():
        registry.register(
            RegisteredTest(
                id=NIST_NUMBER_TO_ID[number],
                name=NIST_TEST_NAMES[number],
                runner=runner,
                aliases=(number, str(number), f"nist.{number}"),
                expensive=number in pool_candidates,
                batch_runner=batch_runners.get(number),
            )
        )

    fips_context_tests = {
        "monobit": _fips.monobit_test_from_context,
        "poker": _fips.poker_test_from_context,
        "runs": _fips.runs_test_from_context,
        "long_run": _fips.long_run_test_from_context,
    }
    for short_name, context_test in fips_context_tests.items():
        registry.register(
            RegisteredTest(
                id=f"fips.{short_name}",
                name=f"FIPS {short_name.replace('_', ' ')}",
                runner=_fips_runner(context_test),
            )
        )

    registry.register(
        RegisteredTest(
            id="hw.platform",
            name="HW/SW on-the-fly platform",
            runner=_hw_platform_runner,
            expensive=True,
        )
    )
    return registry


#: The shared default registry used by the suite, battery and batch executor.
DEFAULT_REGISTRY = build_default_registry()
