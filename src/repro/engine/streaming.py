"""Streaming incremental contexts: O(1) window-roll shared statistics.

The monitor and fleet paths historically re-derived every shared statistic
from scratch per window: each evaluation sliced the raw uint8 history,
re-validated it, re-packed it into words and re-ran the full kernels — even
when consecutive windows overlapped almost entirely.  This module keeps the
statistics *running* instead, the way the paper's hardware block does: bits
arrive in arbitrary-size chunks, are funnel-shifted into packed 64-bit
words, and every committed word is reduced exactly once to a small summary
(:func:`repro.engine.packed.word_summaries`).  The trailing window's
statistics then roll in O(1) per word — subtract the evicted word's
summary, add the new word's — so a sliding window never re-scans its
overlap.

Layout
------
:class:`StreamingBatchContext` holds one packed ring per device
(``(rows, ring_words)`` uint64) plus per-word summary rings, a sub-word
staging tail, and running window counters:

* ``ones`` and ``transitions`` roll as true O(1) running totals (the seam
  between adjacent words is stored per word, so evicting a word removes its
  inner transitions *and* its seam with the predecessor in one subtraction).
* walk extremes cannot be rolled under eviction (the maximum may leave the
  window), so they are reduced at query time from the per-word summaries —
  a 64x narrower pass than re-scanning bits, touching summaries instead of
  the stream.
* block sums and block longest-runs are served from the summary rings for
  word-aligned block lengths, through provider hooks on the bridged
  :class:`~repro.engine.context.BatchContext`.

Memory is O(window): every ring is bounded by ``capacity_bits`` regardless
of how many bits have streamed through (:attr:`StreamingBatchContext.state_nbytes`
is the pinned measure).  When the window roll is not word-aligned (tail
bits pending, or ``window_bits % 64 != 0``), the statistics fall back to
the packed kernels over the extracted window — still bit-identical, just
not preseeded.

Bit identity
------------
Window extraction (:meth:`StreamingBatchContext.window_matrix`) funnel-
shifts the ring into a fresh :class:`~repro.engine.packed.PackedMatrix`,
masking the evicted bits of the oldest word and the pad bits of the newest
— so every statistic (and therefore every P-value) is bit-identical to
recomputing on the equivalent history slice.  Enforced by
``tests/test_streaming_parity.py`` and ``benchmarks/bench_streaming.py``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

import repro.obs as obs
from repro.engine import packed as _packed
from repro.engine.context import (
    DEFAULT_BACKEND,
    BatchContext,
    SequenceContext,
    validate_backend,
)
from repro.engine.packed import BITS_PER_WORD, WORD_DTYPE, PackedMatrix, pack_matrix
from repro.nist.common import BitsLike, to_bits

__all__ = ["StreamingBatchContext", "StreamingContext"]

_BITS_INGESTED = obs.counter(
    "repro_stream_bits_ingested_total",
    "Bits pushed into streaming contexts, summed over every row.",
)
_WINDOW_ROLLS = obs.counter(
    "repro_stream_window_rolls_total",
    "Incremental O(1) window rolls of the running streaming counters.",
)
_RING_WRAPS = obs.counter(
    "repro_stream_ring_wraps_total",
    "Commits whose word writes wrapped past the end of the packed ring.",
)

#: Summary rings every streaming context maintains (int16 per word).  The
#: cumulative walk rides in a separate int64 ring (`_walk_cum`) so window
#: queries never re-scan deltas.
_SUMMARY_KEYS = ("pop", "trans", "seam", "walk_max", "walk_min")

#: Extra rings needed only by the block-longest statistic.
_RUN_KEYS = ("longest", "prefix", "suffix")


class StreamingBatchContext:
    """One packed ring per device; window statistics roll word-at-a-time.

    Parameters
    ----------
    num_rows:
        Number of parallel streams (fleet devices).  A push appends the
        same number of bits to every row, so a whole fleet round is one
        vectorised push of new words.
    window_bits:
        Size of the trailing evaluation window.  When it is a multiple of
        64 the window statistics are maintained incrementally; otherwise
        queries fall back to the packed kernels over the extracted window.
    capacity_bits:
        Bits of history retained per row (default: ``window_bits``).  The
        rings are sized to this bound — per-row state is O(capacity), never
        O(stream) — and :meth:`window_matrix` can serve any trailing slice
        up to it.
    backend:
        Backend of the :class:`~repro.engine.context.BatchContext` views
        produced by :meth:`window_context` (statistics are bit-identical
        either way).
    track_runs:
        Maintain the per-word one-run summary rings that serve the
        block-longest statistic.  Disable for workloads that never read it
        (three table gathers per word cheaper on the push path).
    """

    def __init__(
        self,
        num_rows: int,
        window_bits: int,
        *,
        capacity_bits: Optional[int] = None,
        backend: str = DEFAULT_BACKEND,
        track_runs: bool = True,
    ) -> None:
        if num_rows < 0:
            raise ValueError("num_rows must be non-negative")
        if window_bits < 1:
            raise ValueError("window_bits must be positive")
        capacity = window_bits if capacity_bits is None else int(capacity_bits)
        if capacity < window_bits:
            raise ValueError("capacity_bits must be at least window_bits")
        self.backend = validate_backend(backend)
        self.num_rows = int(num_rows)
        self.window_bits = int(window_bits)
        self.capacity_bits = capacity
        self.track_runs = bool(track_runs)
        self._ring_words = max(1, -(-capacity // BITS_PER_WORD))
        self._aligned = window_bits % BITS_PER_WORD == 0
        self._window_words = window_bits // BITS_PER_WORD
        # Rings are allocated at twice their logical size and every value is
        # written at slot i and i + size (a mirrored ring): any logical span
        # of up to `size` words is then a contiguous view, so window queries
        # never concatenate-copy around the wrap point.
        self._words = np.zeros((self.num_rows, 2 * self._ring_words), dtype=WORD_DTYPE)
        keys = _SUMMARY_KEYS + (_RUN_KEYS if self.track_runs else ())
        self._sums: Dict[str, np.ndarray] = {
            key: np.zeros((self.num_rows, 2 * self._ring_words), dtype=np.int16)
            for key in keys
        }
        # Absolute ±1-walk value at each committed word's START (int64: a
        # stream may run past 2**31 bits).  Window walk extremes then fold
        # `cum + walk_max` directly — no query-time cumulative sum.
        self._walk_cum = np.zeros((self.num_rows, 2 * self._ring_words), dtype=np.int64)
        self._walk_total = np.zeros(self.num_rows, dtype=np.int64)
        self._tail = np.zeros(self.num_rows, dtype=WORD_DTYPE)
        self._tail_len = 0
        self._committed = 0
        self._total_bits = 0
        self._last_bit = np.zeros(self.num_rows, dtype=np.uint8)
        self._win_ones = np.zeros(self.num_rows, dtype=np.int64)
        self._win_trans = np.zeros(self.num_rows, dtype=np.int64)

    # ------------------------------------------------------------------ state
    @property
    def total_bits(self) -> int:
        """Bits pushed so far, per row (the stream position)."""
        return self._total_bits

    @property
    def bits_stored(self) -> int:
        """Trailing bits servable right now: ``min(total, capacity)``."""
        return min(self._total_bits, self.capacity_bits)

    @property
    def tail_bits(self) -> int:
        """Pending sub-word bits not yet committed to the ring (0..63)."""
        return self._tail_len

    @property
    def committed_words(self) -> int:
        """Full 64-bit words committed so far (monotonic, not ring-bounded)."""
        return self._committed

    @property
    def state_nbytes(self) -> int:
        """Bytes held by all per-row state — O(capacity), never O(stream)."""
        total = self._words.nbytes + self._tail.nbytes + self._last_bit.nbytes
        total += self._win_ones.nbytes + self._win_trans.nbytes
        total += self._walk_cum.nbytes + self._walk_total.nbytes
        for ring in self._sums.values():
            total += ring.nbytes
        return int(total)

    @property
    def window_ready(self) -> bool:
        """True when the incremental window statistics are servable.

        Requires a word-aligned window (``window_bits % 64 == 0``), no
        pending tail bits, and a full window of committed words.
        """
        return (
            self._aligned
            and self._tail_len == 0
            and self._committed >= self._window_words
        )

    def __repr__(self) -> str:
        return (
            f"StreamingBatchContext(rows={self.num_rows}, "
            f"window={self.window_bits}, capacity={self.capacity_bits}, "
            f"total_bits={self._total_bits})"
        )

    # ------------------------------------------------------------------ push
    def push(self, data: Union[np.ndarray, PackedMatrix]) -> None:
        """Append the same number of new bits to every row.

        ``data`` is a ``(num_rows, nbits)`` uint8 bit matrix (validated and
        packed through :func:`~repro.engine.packed.pack_matrix`) or an
        already-packed :class:`~repro.engine.packed.PackedMatrix` — e.g.
        word-native producer output — in which case no uint8 pass happens at
        all.  Incoming words are funnel-shifted onto the pending tail, full
        words are committed to the rings with their summaries, and the
        running window counters roll by the evicted/entering word summaries.
        """
        if isinstance(data, PackedMatrix):
            packed_in = data
        else:
            matrix = np.asarray(data)
            if matrix.ndim != 2:
                raise ValueError("push expects a 2-D (rows, bits) matrix or PackedMatrix")
            packed_in = pack_matrix(matrix)
        if packed_in.num_rows != self.num_rows:
            raise ValueError(
                f"expected {self.num_rows} rows, got {packed_in.num_rows}"
            )
        nbits = packed_in.n
        if nbits == 0:
            return
        _BITS_INGESTED.inc(nbits * self.num_rows)
        in_words = packed_in.words
        offset = self._tail_len
        total = offset + nbits
        commit = total // BITS_PER_WORD
        new_tail_len = total % BITS_PER_WORD
        if offset == 0:
            combined = in_words
        else:
            # Funnel-shift the new words up by the tail offset; each word's
            # displaced top bits carry into its successor, and the pending
            # tail fills the first word's low bits.
            width = (total + BITS_PER_WORD - 1) // BITS_PER_WORD
            in_width = in_words.shape[1]
            shift = np.uint64(offset)
            unshift = np.uint64(BITS_PER_WORD - offset)
            combined = np.zeros((self.num_rows, width), dtype=WORD_DTYPE)
            combined[:, :in_width] = in_words << shift
            combined[:, 0] |= self._tail
            carries = in_words >> unshift
            if width > in_width:
                combined[:, 1:] |= carries
            else:
                # The last carry is all zero-pad here (offset + tail bits of
                # the input fit the existing last word).
                combined[:, 1:] |= carries[:, :-1]
        if commit:
            self._commit(np.ascontiguousarray(combined[:, :commit]))
        if new_tail_len:
            self._tail[:] = combined[:, commit] & np.uint64((1 << new_tail_len) - 1)
        else:
            self._tail[:] = 0
        self._tail_len = new_tail_len
        self._total_bits += nbits

    def _commit(self, new_words: np.ndarray) -> None:
        """Fold ``count`` freshly completed words into rings and counters."""
        count = new_words.shape[1]
        if self._committed % self._ring_words + min(count, self._ring_words) > self._ring_words:
            _RING_WRAPS.inc()
        sums = _packed.word_summaries(new_words, track_runs=self.track_runs)
        last = sums["last"]
        prev_last = np.empty((self.num_rows, count), dtype=np.uint8)
        prev_last[:, 0] = self._last_bit
        if count > 1:
            prev_last[:, 1:] = last[:, :-1]
        seam = (prev_last ^ sums["first"]).astype(np.int16)
        entry: Dict[str, np.ndarray] = {
            "pop": sums["pop"].astype(np.int16),
            # inner + seam per word: evicting a word then removes its inner
            # transitions and its seam with the predecessor in one go.  The
            # window's leading seam (against the word *before* the window)
            # is subtracted at query time from the seam ring.
            "trans": sums["inner"].astype(np.int16) + seam,
            "seam": seam,
            "walk_max": sums["walk_max"],
            "walk_min": sums["walk_min"],
        }
        # Word-start cumulative walk: carry-in plus the exclusive prefix of
        # the new deltas (the O(stride) scan happens once here, so window
        # queries never pay an O(window) cumulative sum).
        inclusive = np.cumsum(sums["delta"], axis=1, dtype=np.int64)
        cum_start = (self._walk_total[:, np.newaxis] + inclusive) - sums["delta"]
        self._walk_total += inclusive[:, -1]
        self._write_ring(self._walk_cum, cum_start)
        if self.track_runs:
            for key in _RUN_KEYS:
                entry[key] = sums[key]
        if self._aligned:
            self._roll_counters(entry, count)
        self._write_ring(self._words, new_words)
        for key, values in entry.items():
            self._write_ring(self._sums[key], values)
        self._last_bit[:] = last[:, -1]
        self._committed += count

    def _roll_counters(self, entry: Dict[str, np.ndarray], count: int) -> None:
        """O(1)-per-word roll of the running ones/transition totals."""
        _WINDOW_ROLLS.inc()
        window = self._window_words
        if count >= window:
            # The push replaces the whole window: rebuild from the new
            # summaries alone (nothing old survives).
            self._win_ones = entry["pop"][:, count - window :].sum(axis=1, dtype=np.int64)
            self._win_trans = entry["trans"][:, count - window :].sum(axis=1, dtype=np.int64)
            return
        evict_from = max(0, self._committed - window)
        evict_to = max(0, self._committed + count - window)
        if evict_to > evict_from:
            # Words leaving the window were committed before this push, so
            # their summaries are still in the rings (capacity >= window).
            old_pop = self._take(self._sums["pop"], evict_from, evict_to - evict_from)
            old_trans = self._take(self._sums["trans"], evict_from, evict_to - evict_from)
            self._win_ones -= old_pop.sum(axis=1, dtype=np.int64)
            self._win_trans -= old_trans.sum(axis=1, dtype=np.int64)
        self._win_ones += entry["pop"].sum(axis=1, dtype=np.int64)
        self._win_trans += entry["trans"].sum(axis=1, dtype=np.int64)

    # ------------------------------------------------------------------ rings
    def _take(self, ring: np.ndarray, start_word: int, count: int) -> np.ndarray:
        """Ring values of global word indices [start, start+count).

        Always a contiguous view thanks to the mirrored layout (each value
        lives at slot i and i + size); callers only reduce or copy, never
        mutate.
        """
        size = self._ring_words
        start = start_word % size
        return ring[:, start : start + count]

    def _write_ring(self, ring: np.ndarray, values: np.ndarray) -> None:
        """Write ``values`` at the slots of the next global word indices.

        Maintains the mirror invariant ``ring[:, i] == ring[:, i + size]``
        so reads are contiguous; the extra write touches ring-sized arrays
        (64x smaller than the bits) once per push.
        """
        size = self._ring_words
        count = values.shape[1]
        first_index = self._committed
        if count > size:
            # Only the last `size` values survive; their slots still follow
            # the global indices (the ring start is not reset by a big push).
            first_index += count - size
            values = values[:, count - size :]
            count = size
        start = first_index % size
        end = start + count
        ring[:, start:end] = values
        if end <= size:
            ring[:, start + size : end + size] = values
        else:
            # The primary write ran into the mirror half: complete the
            # mirror of the un-wrapped part and the primary of the rest.
            split = size - start
            ring[:, start + size :] = values[:, :split]
            ring[:, : end - size] = values[:, split:]

    # ------------------------------------------------------------------ queries
    def window_stats(self) -> Dict[str, object]:
        """Running shared statistics of the trailing window (no extraction).

        Returns ``ones``, ``num_runs``, ``last_bits`` (per-row arrays) and
        ``walk_extremes`` (the ``(S_max, S_min, S_final)`` triple) computed
        from the rolled counters and summary rings alone — the raw window
        bits are never touched.  Raises ``ValueError`` unless
        :attr:`window_ready`.
        """
        if not self.window_ready:
            raise ValueError(
                "incremental window statistics need a word-aligned full window "
                "(window_bits % 64 == 0, no pending tail bits, window filled); "
                "use window_context() for the general extraction path"
            )
        start = self._committed - self._window_words
        # The running transition total includes the window's leading seam
        # (first word vs its predecessor, which lies outside the window).
        lead_seam = self._take(self._sums["seam"], start, 1)[:, 0].astype(np.int64)
        return {
            "ones": self._win_ones.copy(),
            "num_runs": self._win_trans - lead_seam + 1,
            "walk_extremes": self._window_walk(start),
            "last_bits": self._last_bit.copy(),
        }

    def _window_walk(self, start: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Walk extremes from per-word summaries (64x narrower than bits)."""
        window = self._window_words
        # Each word's start-of-word cumulative walk is already in the ring;
        # the window base subtracts out after the reductions, and the final
        # walk value is just the running total minus that base (the window
        # always ends at the last committed word).
        cums = self._take(self._walk_cum, start, window)
        base = cums[:, 0].copy()
        s_max = (cums + self._take(self._sums["walk_max"], start, window)).max(axis=1)
        s_min = (cums + self._take(self._sums["walk_min"], start, window)).min(axis=1)
        return s_max - base, s_min - base, self._walk_total - base

    def window_block_sums(self, block_length: int) -> Optional[np.ndarray]:
        """Window per-block ones counts from the popcount ring, or ``None``.

        Served incrementally for word-aligned block lengths that divide into
        the window; other geometries return ``None`` (use
        :meth:`window_context` for the general recompute path).  Raises
        ``ValueError`` unless :attr:`window_ready`.
        """
        if not self.window_ready:
            raise ValueError("incremental block sums need a full aligned window")
        return self._window_block_sums(block_length, self._committed - self._window_words)

    def window_block_longest(self, block_length: int) -> Optional[np.ndarray]:
        """Window per-block longest one-runs from the run rings, or ``None``.

        Needs ``track_runs=True`` and a word-aligned block length dividing
        the window; otherwise ``None``.  Raises ``ValueError`` unless
        :attr:`window_ready`.
        """
        if not self.window_ready:
            raise ValueError("incremental block longest needs a full aligned window")
        return self._window_block_longest(
            block_length, self._committed - self._window_words
        )

    def _window_block_sums(self, block_length: int, start: int) -> Optional[np.ndarray]:
        """Window block sums from the popcount ring (word-aligned blocks)."""
        if block_length <= 0 or block_length % BITS_PER_WORD != 0:
            return None
        if block_length > self.window_bits:
            return None
        words_per_block = block_length // BITS_PER_WORD
        num_blocks = self.window_bits // block_length
        pops = self._take(self._sums["pop"], start, num_blocks * words_per_block)
        blocks = pops.reshape(self.num_rows, num_blocks, words_per_block)
        if words_per_block <= 8:
            # numpy reductions over a short trailing axis are dominated by
            # per-slice overhead; unrolled adds are several times faster at
            # the block lengths the NIST designs use (1-8 words per block).
            acc = blocks[:, :, 0].astype(np.int64)
            for index in range(1, words_per_block):
                acc += blocks[:, :, index]
            return acc
        return blocks.sum(axis=2, dtype=np.int64)

    def _window_block_longest(self, block_length: int, start: int) -> Optional[np.ndarray]:
        """Window block longest-one-runs via the per-word run-summary merge."""
        if not self.track_runs:
            return None
        if block_length <= 0 or block_length % BITS_PER_WORD != 0:
            return None
        if block_length > self.window_bits:
            return None
        words_per_block = block_length // BITS_PER_WORD
        num_blocks = self.window_bits // block_length
        take = num_blocks * words_per_block
        shape = (self.num_rows, num_blocks, words_per_block)
        longs = np.asarray(self._take(self._sums["longest"], start, take)).reshape(shape)
        prefixes = np.asarray(self._take(self._sums["prefix"], start, take)).reshape(shape)
        suffixes = np.asarray(self._take(self._sums["suffix"], start, take)).reshape(shape)
        longest = np.zeros((self.num_rows, num_blocks), dtype=np.int64)
        trailing = np.zeros((self.num_rows, num_blocks), dtype=np.int64)
        for index in range(words_per_block):
            word_prefix = prefixes[:, :, index]
            bridged = trailing + word_prefix
            np.maximum(longest, longs[:, :, index], out=longest)
            np.maximum(longest, bridged, out=longest)
            # prefix == 64 iff the word is all ones: the carried run extends
            # through it whole, same recurrence as the chunk-level kernel.
            trailing = np.where(
                word_prefix == BITS_PER_WORD,
                trailing + BITS_PER_WORD,
                suffixes[:, :, index],
            )
        return longest

    def window_matrix(self, nbits: Optional[int] = None) -> PackedMatrix:
        """The trailing ``nbits`` of every row as a fresh packed matrix.

        Serves any trailing slice up to :attr:`bits_stored` at any bit
        alignment: the ring words are funnel-shifted down so bit 0 of the
        result is the window's first bit, the evicted bits of the oldest
        word fall off the bottom, and the pad bits of the newest word are
        masked to zero (the :class:`~repro.engine.packed.PackedMatrix`
        zero-pad invariant).
        """
        nbits = self.window_bits if nbits is None else int(nbits)
        if nbits < 0:
            raise ValueError("window size must be non-negative")
        if nbits > self.bits_stored:
            raise ValueError(
                f"only the trailing {self.bits_stored} bits are retained "
                f"(capacity {self.capacity_bits}); cannot serve {nbits}"
            )
        if nbits == 0:
            return PackedMatrix(np.zeros((self.num_rows, 0), dtype=WORD_DTYPE), 0)
        start_bit = self._total_bits - nbits
        first_word = start_bit // BITS_PER_WORD
        offset = start_bit % BITS_PER_WORD
        span = (self._total_bits + BITS_PER_WORD - 1) // BITS_PER_WORD - first_word
        out_words = (nbits + BITS_PER_WORD - 1) // BITS_PER_WORD
        committed_count = self._committed - first_word
        ext = np.zeros((self.num_rows, span), dtype=WORD_DTYPE)
        if committed_count > 0:
            ext[:, :committed_count] = self._take(self._words, first_word, committed_count)
        if self._tail_len:
            ext[:, committed_count] = self._tail
        if offset == 0:
            out = np.ascontiguousarray(ext[:, :out_words])
        else:
            shift = np.uint64(offset)
            unshift = np.uint64(BITS_PER_WORD - offset)
            shifted = ext >> shift
            shifted[:, :-1] |= ext[:, 1:] << unshift
            out = np.ascontiguousarray(shifted[:, :out_words])
        remainder = nbits % BITS_PER_WORD
        if remainder:
            out[:, -1] &= np.uint64((1 << remainder) - 1)
        return PackedMatrix(out, nbits)

    def window_context(self, nbits: Optional[int] = None) -> BatchContext:
        """The trailing window as a :class:`BatchContext`, preseeded.

        When the incremental fast path applies (:attr:`window_ready` and the
        default window size), the context is preseeded with the rolled
        statistics and given block-statistic providers, so ``run_batch``
        and the cheap-test registry never recompute them; otherwise a plain
        context over the extracted window is returned (bit-identical, just
        recomputed).  The extracted matrix is a snapshot — later pushes
        never mutate it — and the providers detach automatically once new
        words are committed.
        """
        nbits = self.window_bits if nbits is None else int(nbits)
        context = BatchContext(self.window_matrix(nbits), backend=self.backend)
        if nbits != self.window_bits or not self.window_ready:
            return context
        stats = self.window_stats()
        start = self._committed - self._window_words
        generation = self._committed

        def block_sums_provider(block_length: int) -> Optional[np.ndarray]:
            if self._committed != generation:
                return None
            return self._window_block_sums(block_length, start)

        def block_longest_provider(block_length: int) -> Optional[np.ndarray]:
            if self._committed != generation:
                return None
            return self._window_block_longest(block_length, start)

        ones = stats["ones"]
        num_runs = stats["num_runs"]
        walk = stats["walk_extremes"]
        last = stats["last_bits"]
        assert isinstance(ones, np.ndarray) and isinstance(num_runs, np.ndarray)
        assert isinstance(walk, tuple) and isinstance(last, np.ndarray)
        return context.preseed(
            ones=ones,
            num_runs=num_runs,
            walk_extremes=walk,
            last_bits=last,
            block_sums_provider=block_sums_provider,
            block_longest_provider=block_longest_provider,
        )

    # ------------------------------------------------------------------ state dict
    def state_dict(self) -> Dict[str, Any]:
        """The full streaming state as plain values (fleet snapshot support).

        Only the primary ring halves are captured: the mirrored layout keeps
        ``ring[:, i] == ring[:, i + size]`` as an invariant, so
        ``ring[:, :size]`` fully determines each ring and the snapshot is
        half the ring bytes.  Arrays are copies — later pushes never mutate
        a captured state.  The counterpart is :meth:`load_state` /
        :meth:`from_state`, which restore a context whose subsequent pushes
        and window statistics are bit-identical to the uninterrupted run.
        """
        size = self._ring_words
        keys = _SUMMARY_KEYS + (_RUN_KEYS if self.track_runs else ())
        return {
            "version": 1,
            "num_rows": self.num_rows,
            "window_bits": self.window_bits,
            "capacity_bits": self.capacity_bits,
            "backend": self.backend,
            "track_runs": self.track_runs,
            "committed": self._committed,
            "total_bits": self._total_bits,
            "tail_len": self._tail_len,
            "tail": self._tail.copy(),
            "last_bit": self._last_bit.copy(),
            "win_ones": self._win_ones.copy(),
            "win_trans": self._win_trans.copy(),
            "walk_total": self._walk_total.copy(),
            "words": self._words[:, :size].copy(),
            "walk_cum": self._walk_cum[:, :size].copy(),
            "sums": {key: self._sums[key][:, :size].copy() for key in keys},
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` capture into this context.

        The context's geometry (rows, window, capacity, ``track_runs``) must
        match the captured one; the backend is free to differ (statistics
        are bit-identical on either backend).  Ring mirrors are rebuilt from
        the captured primary halves.
        """
        if state.get("version") != 1:
            raise ValueError(
                f"unsupported streaming state version {state.get('version')!r}"
            )
        for key, expected in (
            ("num_rows", self.num_rows),
            ("window_bits", self.window_bits),
            ("capacity_bits", self.capacity_bits),
            ("track_runs", self.track_runs),
        ):
            if state[key] != expected:
                raise ValueError(
                    f"streaming state mismatch: {key} is {state[key]!r}, "
                    f"this context has {expected!r}"
                )
        self._committed = int(state["committed"])
        self._total_bits = int(state["total_bits"])
        self._tail_len = int(state["tail_len"])
        self._tail[:] = np.asarray(state["tail"], dtype=WORD_DTYPE)
        self._last_bit[:] = np.asarray(state["last_bit"], dtype=np.uint8)
        self._win_ones[:] = np.asarray(state["win_ones"], dtype=np.int64)
        self._win_trans[:] = np.asarray(state["win_trans"], dtype=np.int64)
        self._walk_total[:] = np.asarray(state["walk_total"], dtype=np.int64)
        self._restore_ring(self._words, np.asarray(state["words"], dtype=WORD_DTYPE))
        self._restore_ring(
            self._walk_cum, np.asarray(state["walk_cum"], dtype=np.int64)
        )
        for key in self._sums:
            self._restore_ring(
                self._sums[key], np.asarray(state["sums"][key], dtype=np.int16)
            )

    def _restore_ring(self, ring: np.ndarray, primary: np.ndarray) -> None:
        """Load a primary ring half and rebuild its mirror."""
        size = self._ring_words
        if primary.shape != (self.num_rows, size):
            raise ValueError(
                f"ring state has shape {primary.shape}, "
                f"expected {(self.num_rows, size)}"
            )
        ring[:, :size] = primary
        ring[:, size:] = primary

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "StreamingBatchContext":
        """Build a fresh context from a :meth:`state_dict` capture."""
        context = cls(
            int(state["num_rows"]),
            int(state["window_bits"]),
            capacity_bits=int(state["capacity_bits"]),
            backend=str(state["backend"]),
            track_runs=bool(state["track_runs"]),
        )
        context.load_state(state)
        return context


class StreamingContext:
    """Single-stream facade over a one-row :class:`StreamingBatchContext`.

    The monitor-side object: one device's live bit stream, pushed in
    arbitrary-size chunks (any :data:`~repro.nist.common.BitsLike`, or a
    one-row :class:`~repro.engine.packed.PackedMatrix` for word-native
    producers), with the trailing window servable as a packed matrix, a
    preseeded batch context, or a per-sequence context.
    """

    def __init__(
        self,
        window_bits: int,
        *,
        capacity_bits: Optional[int] = None,
        backend: str = DEFAULT_BACKEND,
        track_runs: bool = True,
    ) -> None:
        self._batch = StreamingBatchContext(
            1,
            window_bits,
            capacity_bits=capacity_bits,
            backend=backend,
            track_runs=track_runs,
        )

    @property
    def batch(self) -> StreamingBatchContext:
        """The underlying one-row batch context."""
        return self._batch

    @property
    def window_bits(self) -> int:
        return self._batch.window_bits

    @property
    def capacity_bits(self) -> int:
        return self._batch.capacity_bits

    @property
    def backend(self) -> str:
        return self._batch.backend

    @property
    def total_bits(self) -> int:
        return self._batch.total_bits

    @property
    def bits_stored(self) -> int:
        return self._batch.bits_stored

    @property
    def tail_bits(self) -> int:
        return self._batch.tail_bits

    @property
    def state_nbytes(self) -> int:
        return self._batch.state_nbytes

    @property
    def window_ready(self) -> bool:
        return self._batch.window_ready

    def push(self, bits: Union[BitsLike, PackedMatrix]) -> None:
        """Append a chunk of the stream (any size, down to a single bit)."""
        if isinstance(bits, PackedMatrix):
            self._batch.push(bits)
            return
        self._batch.push(to_bits(bits)[np.newaxis, :])

    def window_stats(self) -> Dict[str, object]:
        """Rolled window statistics (see :meth:`StreamingBatchContext.window_stats`)."""
        return self._batch.window_stats()

    def window_matrix(self, nbits: Optional[int] = None) -> PackedMatrix:
        """The trailing window as a one-row packed matrix."""
        return self._batch.window_matrix(nbits)

    def window_context(self, nbits: Optional[int] = None) -> BatchContext:
        """The trailing window as a (preseeded when possible) batch context."""
        return self._batch.window_context(nbits)

    def sequence_context(self, nbits: Optional[int] = None) -> SequenceContext:
        """The trailing window as a per-sequence context."""
        return self._batch.window_context(nbits).context(0)

    def state_dict(self) -> Dict[str, Any]:
        """The stream state as plain values (see :meth:`StreamingBatchContext.state_dict`)."""
        return self._batch.state_dict()

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` capture into this stream."""
        self._batch.load_state(state)

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "StreamingContext":
        """Build a fresh single-row stream from a :meth:`state_dict` capture."""
        if state.get("num_rows") != 1:
            raise ValueError("StreamingContext state must have exactly one row")
        stream = cls(
            int(state["window_bits"]),
            capacity_bits=int(state["capacity_bits"]),
            backend=str(state["backend"]),
            track_runs=bool(state["track_runs"]),
        )
        stream.load_state(state)
        return stream

    def __repr__(self) -> str:
        return (
            f"StreamingContext(window={self.window_bits}, "
            f"capacity={self.capacity_bits}, total_bits={self.total_bits})"
        )
