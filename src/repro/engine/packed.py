"""Packed-bitplane backend: 64-bits-per-word kernels for the shared statistics.

The paper's hardware derives its shared sub-statistics with word-parallel
logic over the raw bit stream; the software engine historically spent a full
``uint8`` byte per bit, so every statistic paid 8x the memory traffic the
hardware would.  This module closes that gap: a bit matrix is packed row by
row into ``uint64`` words (:func:`pack_matrix`) and the cheap shared
statistics — ones count, per-block ones, transition count, longest run of
ones per block, random-walk extremes — are computed directly on the words
with popcount and shift/mask arithmetic, touching 1/8th of the bytes.

Bit order
---------
Words use a *little* bit order end to end: stream bit ``j`` of a row lives
at bit position ``j % 64`` of word ``j // 64`` (``np.packbits(...,
bitorder="little")`` viewed as little-endian ``uint64``).  The payoff is
that bit adjacency survives packing — ``word >> 1`` aligns stream bit
``j + 1`` with stream bit ``j`` — so transitions and run lengths reduce to
shift/XOR/AND word ops, stitched across word boundaries explicitly.  Rows
whose length is not a multiple of 64 are zero-padded at the top of the last
word; every kernel masks those tail bits out, and :class:`PackedMatrix`
validates on construction that the padding really is zero.

Every kernel is integer-exact and produces *bit-identical* values to the
``uint8`` reference paths in :mod:`repro.engine.context` (asserted by
``tests/test_packed.py``), so backend choice never changes a P-value.

The popcount primitive uses :func:`numpy.bitwise_count` where available
(numpy >= 2.0) and falls back to a byte lookup table on older numpy.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

# The byte-level (MSB-first, right-zero-padded tail) siblings of the word
# packers below: the single interchange convention every capture file and
# integer codec in the library shares.  Defined in :mod:`repro.nist.common`
# (the dependency-free bottom layer) and re-exported here so both packing
# families have one documented home.
from repro.nist.common import pack_bits, unpack_bits

__all__ = [
    "BITS_PER_WORD",
    "PackedMatrix",
    "pack_matrix",
    "unpack_matrix",
    "unpack_rows",
    "pack_bits",
    "unpack_bits",
    "popcount",
    "ones_count",
    "block_ones",
    "supports_block_ones",
    "transition_counts",
    "block_longest_one_runs",
    "supports_block_longest_one_runs",
    "walk_extremes",
    "last_bits",
    "word_summaries",
]

#: Bits per packed word.
BITS_PER_WORD = 64

#: Storage dtype of packed words: explicit little-endian so the byte/uint16
#: sub-views used by the kernels line up with stream order on any host.
WORD_DTYPE = np.dtype("<u8")

_HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: All word bits except the top one — the positions where ``w ^ (w >> 1)``
#: compares two bits of the *same* word.
_INNER_PAIR_MASK = np.uint64((1 << 63) - 1)


class PackedMatrix:
    """A ``(rows, n)`` bit matrix packed 64 bits per word.

    Attributes
    ----------
    words:
        ``(rows, ceil(n / 64))`` little-endian ``uint64`` array; stream bit
        ``j`` of a row is bit ``j % 64`` of word ``j // 64``.
    n:
        Bits per row.  Tail bits of the last word (``n % 64`` onwards) are
        zero and are never interpreted by the kernels.
    source:
        Optional reference to the original ``uint8`` matrix (kept by
        ``pack_matrix(..., keep_source=True)``) so consumers that still need
        per-bit access — template tests, pattern counters — read it back
        without an unpack pass.
    """

    __slots__ = ("words", "n", "source")

    def __init__(self, words: np.ndarray, n: int, source: Optional[np.ndarray] = None):
        words = np.ascontiguousarray(words, dtype=WORD_DTYPE)
        if words.ndim != 2:
            raise ValueError("PackedMatrix expects a 2-D (rows, words) array")
        if n < 0:
            raise ValueError("bit length n must be non-negative")
        expected_words = (n + BITS_PER_WORD - 1) // BITS_PER_WORD
        if words.shape[1] != expected_words:
            raise ValueError(
                f"{n} bits per row need {expected_words} words, got {words.shape[1]}"
            )
        tail = n % BITS_PER_WORD
        if tail and words.size and np.any(words[:, -1] >> np.uint64(tail)):
            raise ValueError(
                "tail bits beyond n must be zero-padded "
                f"(n = {n} leaves {BITS_PER_WORD - tail} pad bits in the last word)"
            )
        self.words = words
        self.n = int(n)
        self.source = source

    @property
    def num_rows(self) -> int:
        return int(self.words.shape[0])

    @property
    def num_words(self) -> int:
        return int(self.words.shape[1])

    @property
    def nbytes(self) -> int:
        """Bytes held by the packed words (1/8th of the uint8 matrix)."""
        return int(self.words.nbytes)

    def unpack(self) -> np.ndarray:
        """The ``(rows, n)`` uint8 bit matrix (the retained source if any)."""
        if self.source is not None:
            return self.source
        return unpack_matrix(self)

    def row(self, index: int) -> np.ndarray:
        """One row as a 1-D uint8 bit array, without unpacking the rest.

        The lazy per-row escape hatch of the batch executor's scalar
        fallback paths: a packed-only batch hands a single sequence to a
        per-bit consumer at ``n`` bytes instead of ``rows * n``.
        """
        return unpack_rows(self, index, index + 1)[0]

    def __repr__(self) -> str:
        return f"PackedMatrix(rows={self.num_rows}, n={self.n}, words={self.num_words})"


def pack_matrix(matrix: np.ndarray, *, keep_source: bool = False) -> PackedMatrix:
    """Pack a validated ``(rows, n)`` uint8 bit matrix into 64-bit words.

    Rows are packed independently (``np.packbits`` along axis 1, little bit
    order) and right-padded with zero bytes up to a whole number of words;
    ``keep_source=True`` retains a reference to the input matrix so later
    per-bit consumers skip the unpack pass.
    """
    matrix = np.ascontiguousarray(matrix, dtype=np.uint8)
    if matrix.ndim != 2:
        raise ValueError("pack_matrix expects a 2-D (rows, n) bit matrix")
    if matrix.size and int(matrix.max()) > 1:
        raise ValueError("bit matrix must contain only 0 and 1 values")
    rows, n = matrix.shape
    num_words = (n + BITS_PER_WORD - 1) // BITS_PER_WORD
    packed_bytes = np.packbits(matrix, axis=1, bitorder="little")
    if packed_bytes.shape[1] < num_words * 8:
        padded = np.zeros((rows, num_words * 8), dtype=np.uint8)
        padded[:, : packed_bytes.shape[1]] = packed_bytes
        packed_bytes = padded
    words = packed_bytes.view(WORD_DTYPE)
    return PackedMatrix(words, n, source=matrix if keep_source else None)


def unpack_matrix(packed: PackedMatrix) -> np.ndarray:
    """Expand a :class:`PackedMatrix` back to its ``(rows, n)`` uint8 form.

    Exact inverse of :func:`pack_matrix` for every ``n`` (tail pad bytes are
    dropped by unpacking with an explicit bit count).
    """
    if packed.n == 0:
        return np.zeros((packed.num_rows, 0), dtype=np.uint8)
    as_bytes = np.ascontiguousarray(packed.words).view(np.uint8)
    return np.unpackbits(as_bytes, axis=1, count=packed.n, bitorder="little")


def unpack_rows(packed: PackedMatrix, start: int, stop: int) -> np.ndarray:
    """Expand rows ``start:stop`` of a :class:`PackedMatrix` to uint8 bits.

    Slices the retained source when one exists; otherwise only the requested
    rows' words are unpacked, so chunked consumers (the batched heavy-test
    kernels, the pooled fallback) never materialise the full matrix.
    """
    if packed.source is not None:
        return packed.source[start:stop]
    if packed.n == 0:
        return np.zeros((packed.words[start:stop].shape[0], 0), dtype=np.uint8)
    as_bytes = np.ascontiguousarray(packed.words[start:stop]).view(np.uint8)
    return np.unpackbits(as_bytes, axis=1, count=packed.n, bitorder="little")


# ---------------------------------------------------------------------------
# Popcount primitive
# ---------------------------------------------------------------------------

_POP8_LUT: Optional[np.ndarray] = None


def _pop8_lut() -> np.ndarray:
    """256-entry per-byte popcount table (fallback for old numpy)."""
    global _POP8_LUT
    if _POP8_LUT is None:
        _POP8_LUT = np.unpackbits(
            np.arange(256, dtype=np.uint8)[:, np.newaxis], axis=1
        ).sum(axis=1, dtype=np.uint8)
    return _POP8_LUT


def popcount(values: np.ndarray, *, force_lut: bool = False) -> np.ndarray:
    """Per-element popcount of an unsigned integer array (uint8 result).

    Uses :func:`numpy.bitwise_count` when the running numpy provides it;
    otherwise each element is split into its bytes and summed through a
    256-entry lookup table (``force_lut=True`` exercises the fallback in
    tests regardless of the numpy version).
    """
    if _HAVE_BITWISE_COUNT and not force_lut:
        return np.bitwise_count(values)
    values = np.ascontiguousarray(values)
    itemsize = values.dtype.itemsize
    as_bytes = values.view(np.uint8).reshape(values.shape + (itemsize,))
    # Max popcount per element is 8 * itemsize <= 64: fits uint8.
    return _pop8_lut()[as_bytes].sum(axis=-1, dtype=np.uint8)


# ---------------------------------------------------------------------------
# Word-level kernels
# ---------------------------------------------------------------------------

# PackedMatrix guarantees the tail bits beyond n are zero (validated at
# construction), so a whole-word popcount needs no tail mask and no .n.
def ones_count(packed: PackedMatrix) -> np.ndarray:  # repro: ignore[PKD002]
    """Per-row ones count — the hardware's frequency counter, 64 bits/op."""
    return popcount(packed.words).sum(axis=1, dtype=np.int64)


def supports_block_ones(block_length: int, n: int) -> bool:
    """True when :func:`block_ones` has a packed kernel for this geometry."""
    if block_length <= 0 or block_length > n:
        return False
    return block_length % BITS_PER_WORD == 0 or block_length in (8, 16, 32)


def block_ones(packed: PackedMatrix, block_length: int) -> np.ndarray:
    """Ones count of each full ``block_length``-bit block, per row (int64).

    Supported geometries (everything the NIST/FIPS parameter space actually
    uses on the hot path): block lengths that are a multiple of 64 reduce to
    a word reshape + popcount; 8/16/32-bit blocks are popcounted on the
    byte/uint16/uint32 sub-views of the words (stream order is preserved by
    the little bit order).  Other block lengths raise ``ValueError`` — the
    caller falls back to the uint8 path.
    """
    n = packed.n
    if not supports_block_ones(block_length, n):
        raise ValueError(f"no packed kernel for block_length={block_length} at n={n}")
    rows = packed.num_rows
    num_blocks = n // block_length
    if block_length % BITS_PER_WORD == 0:
        words_per_block = block_length // BITS_PER_WORD
        usable = packed.words[:, : num_blocks * words_per_block]
        counts = popcount(usable).reshape(rows, num_blocks, words_per_block)
        return counts.sum(axis=2, dtype=np.int64)
    view_dtype = {8: "<u1", 16: "<u2", 32: "<u4"}[block_length]
    units = np.ascontiguousarray(packed.words).view(view_dtype)[:, :num_blocks]
    return popcount(units).astype(np.int64)


def transition_counts(packed: PackedMatrix) -> np.ndarray:
    """Number of positions where bit ``j`` differs from bit ``j+1``, per row.

    ``w ^ (w >> 1)`` marks every in-word adjacent pair that differs (the top
    bit of the XOR compares against the next word's padding and is masked
    off); word boundaries are stitched by comparing each word's top bit with
    its successor's bottom bit.  The runs test's ``V_n(obs)`` is this + 1.
    """
    if packed.n == 0:
        return np.zeros(packed.num_rows, dtype=np.int64)
    words = packed.words
    num_words = packed.num_words
    tail = packed.n - (num_words - 1) * BITS_PER_WORD  # 1..64 bits in last word
    pair_mask = np.full(num_words, _INNER_PAIR_MASK, dtype=WORD_DTYPE)
    # In the last word only the first tail-1 adjacent pairs are real bits.
    pair_mask[-1] = np.uint64((1 << (tail - 1)) - 1) if tail < BITS_PER_WORD else _INNER_PAIR_MASK
    inner = popcount((words ^ (words >> np.uint64(1))) & pair_mask).sum(
        axis=1, dtype=np.int64
    )
    if num_words > 1:
        seams = (words[:, :-1] >> np.uint64(63)) ^ (words[:, 1:] & np.uint64(1))
        inner += seams.sum(axis=1, dtype=np.int64)
    return inner


def last_bits(packed: PackedMatrix) -> np.ndarray:
    """The final stream bit of every row (uint8) without unpacking."""
    if packed.n == 0:
        raise ValueError("empty rows have no last bit")
    word = (packed.n - 1) // BITS_PER_WORD
    offset = np.uint64((packed.n - 1) % BITS_PER_WORD)
    return ((packed.words[:, word] >> offset) & np.uint64(1)).astype(np.uint8)


# ---------------------------------------------------------------------------
# Chunk lookup tables (longest-run merge, walk extremes)
# ---------------------------------------------------------------------------
#
# Sub-word statistics that depend on bit *order* (run lengths, walk
# excursions) are computed per 8- or 16-bit chunk through lookup tables and
# merged across chunks with a short vectorised recurrence — the software
# version of the hardware's carry chains.  Tables are built lazily once.

_CHUNK_LUTS: Dict[int, Dict[str, np.ndarray]] = {}


def _chunk_bit_matrix(bits: int) -> np.ndarray:
    """``(2**bits, bits)`` matrix: row v = stream-ordered bits of chunk v."""
    values = np.arange(1 << bits, dtype="<u2" if bits == 16 else np.uint8)
    as_bytes = values[:, np.newaxis].view(np.uint8)
    return np.unpackbits(as_bytes, axis=1, count=bits, bitorder="little")


def _chunk_luts(bits: int) -> Dict[str, np.ndarray]:
    """Per-chunk tables: longest/prefix/suffix one-runs and walk summary."""
    luts = _CHUNK_LUTS.get(bits)
    if luts is None:
        matrix = _chunk_bit_matrix(bits)
        # Longest run of ones per chunk: append a zero column so runs end
        # inside each row, then take the max gap between run edges.
        padded = np.zeros((matrix.shape[0], bits + 1), dtype=np.int8)
        padded[:, :bits] = matrix
        flat = np.concatenate([[0], padded.ravel()])
        edges = np.diff(flat)
        starts = np.flatnonzero(edges == 1)
        ends = np.flatnonzero(edges == -1)
        longest = np.zeros(matrix.shape[0], dtype=np.int16)
        np.maximum.at(longest, starts // (bits + 1), (ends - starts).astype(np.int16))
        # Run of ones touching the chunk's start (prefix) and end (suffix).
        prefix = np.cumprod(matrix, axis=1).sum(axis=1, dtype=np.int16)
        suffix = np.cumprod(matrix[:, ::-1], axis=1).sum(axis=1, dtype=np.int16)
        # ±1 walk summary of the chunk: total delta, max/min prefix sum.
        walk = np.cumsum(2 * matrix.astype(np.int16) - 1, axis=1)
        luts = {
            "longest": longest,
            "prefix": prefix,
            "suffix": suffix,
            "delta": walk[:, -1].astype(np.int16),
            "walk_max": walk.max(axis=1).astype(np.int16),
            "walk_min": walk.min(axis=1).astype(np.int16),
        }
        _CHUNK_LUTS[bits] = luts
    return luts


_WALK_PACK_LUT: Optional[np.ndarray] = None
_RUN_PACK_LUT: Optional[np.ndarray] = None


def _walk_pack_lut() -> np.ndarray:
    """Chunk walk extremes bias-packed into one int16 table.

    Entry v is ``((walk_max + 16) << 6) | (walk_min + 16)`` — both extremes
    of a 16-bit chunk lie in [-16, 16], so one gather per chunk column
    replaces two, and unpacking is a shift and a mask (flat ops, far
    cheaper than table gathers at streaming-push sizes).
    """
    global _WALK_PACK_LUT
    if _WALK_PACK_LUT is None:
        luts = _chunk_luts(16)
        pair = ((luts["walk_max"].astype(np.int32) + 16) << 6) | (
            luts["walk_min"].astype(np.int32) + 16
        )
        _WALK_PACK_LUT = pair.astype(np.int16)
    return _WALK_PACK_LUT


def _run_pack_lut() -> np.ndarray:
    """Chunk one-run lengths packed ``(longest << 10) | (prefix << 5) | suffix``.

    All three lengths of a 16-bit chunk lie in [0, 16] (5 bits each), so the
    triple fits one int16 gather; ``prefix == 16`` doubles as the all-ones
    test the cross-chunk merge needs.
    """
    global _RUN_PACK_LUT
    if _RUN_PACK_LUT is None:
        luts = _chunk_luts(16)
        triple = (
            (luts["longest"].astype(np.int32) << 10)
            | (luts["prefix"].astype(np.int32) << 5)
            | luts["suffix"].astype(np.int32)
        )
        _RUN_PACK_LUT = triple.astype(np.int16)
    return _RUN_PACK_LUT


# Pure reinterpret-cast of the zero-padded words; callers slice to their
# own geometry, so the view itself never consults .n or masks the tail.
def _chunk_view(packed: PackedMatrix, bits: int) -> np.ndarray:  # repro: ignore[PKD002]
    """The words reinterpreted as stream-ordered ``bits``-wide chunks."""
    dtype = "<u2" if bits == 16 else np.uint8
    return np.ascontiguousarray(packed.words).view(dtype)


def supports_block_longest_one_runs(block_length: int, n: int) -> bool:
    """True when :func:`block_longest_one_runs` has a packed kernel."""
    if block_length <= 0 or block_length > n:
        return False
    return block_length % 8 == 0


def block_longest_one_runs(packed: PackedMatrix, block_length: int) -> np.ndarray:
    """Longest run of ones inside each full ``block_length``-bit block.

    Blocks are scanned as 16-bit chunks (8-bit when the block length is not
    a multiple of 16) through the chunk tables, then merged left to right:
    a run crossing a chunk seam is the left chunk's suffix plus the right
    chunk's prefix, and an all-ones chunk extends the carried run whole.
    Covers every NIST-tabulated block length (8 / 128 / 512 / 1000 / 10000).
    """
    n = packed.n
    if not supports_block_longest_one_runs(block_length, n):
        raise ValueError(f"no packed kernel for block_length={block_length} at n={n}")
    chunk_bits = 16 if block_length % 16 == 0 else 8
    luts = _chunk_luts(chunk_bits)
    rows = packed.num_rows
    num_blocks = n // block_length
    chunks_per_block = block_length // chunk_bits
    chunks = _chunk_view(packed, chunk_bits)[:, : num_blocks * chunks_per_block]
    blocks = chunks.reshape(rows, num_blocks, chunks_per_block)
    all_ones = (1 << chunk_bits) - 1
    longest = np.zeros((rows, num_blocks), dtype=np.int64)
    trailing = np.zeros((rows, num_blocks), dtype=np.int64)
    for index in range(chunks_per_block):
        chunk = blocks[:, :, index]
        bridged = trailing + luts["prefix"][chunk]
        np.maximum(longest, luts["longest"][chunk], out=longest)
        np.maximum(longest, bridged, out=longest)
        trailing = np.where(chunk == all_ones, trailing + chunk_bits, luts["suffix"][chunk])
    return longest


def word_summaries(words: np.ndarray, *, track_runs: bool = True) -> Dict[str, np.ndarray]:
    """Per-word shared-statistic summaries of *full* 64-bit words.

    The streaming contexts (:mod:`repro.engine.streaming`) maintain their
    running window statistics from these summaries: every committed word is
    reduced once, and a window roll then adds/subtracts word summaries
    instead of re-scanning bits.  ``words`` is a ``(rows, count)`` uint64
    array of complete words — callers own the tail discipline (a streaming
    ring only commits full words), so no bit length is consulted here.

    Returned keys (all ``(rows, count)`` arrays):

    ``pop`` / ``inner``
        Ones count and in-word adjacent-pair transition count (uint8).
    ``first`` / ``last``
        The word's first and last stream bit (uint8) — the seam state the
        incremental transition count stitches across word boundaries.
    ``delta`` / ``walk_max`` / ``walk_min``
        ±1 walk summary of the word (int16): total delta and the extreme
        prefix sums relative to the word's start.
    ``longest`` / ``prefix`` / ``suffix``
        Longest / start-touching / end-touching one-run lengths (int16),
        present only with ``track_runs=True`` (they cost one extra table
        gather per chunk and only the block-longest statistic reads them).
    """
    words = np.ascontiguousarray(words, dtype=WORD_DTYPE)
    if words.ndim != 2:
        raise ValueError("word_summaries expects a 2-D (rows, count) word array")
    rows, count = words.shape
    chunks = words.view("<u2").reshape(rows, count, 4)
    # Chunk ±1 deltas come straight from popcount (delta = 2*pop - 16) and
    # the in-chunk walk extremes from one bias-packed gather: push-sized
    # inputs are bound by gather traffic, so fewer/narrower tables win.
    deltas = (popcount(chunks).astype(np.int16) << np.int16(1)) - np.int16(16)
    walk_pair = _walk_pack_lut()[chunks]
    highs = walk_pair >> np.int16(6)
    lows = walk_pair & np.int16(63)
    # Merge the four chunks Horner-style from the right:
    #   max(m0, d0 + max(m1, d1 + max(m2, d2 + m3)))
    # — numpy reductions over a length-4 axis cost far more than three
    # unrolled adds/maxima on the column slices.  The +16 table bias rides
    # through unchanged (the d terms are unbiased) and cancels at the end.
    s_max = highs[:, :, 3]
    s_min = lows[:, :, 3]
    total = deltas[:, :, 3].copy()
    for index in (2, 1, 0):
        d = deltas[:, :, index]
        s_max = np.maximum(highs[:, :, index], d + s_max)
        s_min = np.minimum(lows[:, :, index], d + s_min)
        total += d
    summaries: Dict[str, np.ndarray] = {
        "pop": popcount(words),
        "inner": popcount((words ^ (words >> np.uint64(1))) & _INNER_PAIR_MASK),
        "first": (words & np.uint64(1)).astype(np.uint8),
        "last": (words >> np.uint64(63)).astype(np.uint8),
        "delta": total,
        "walk_max": s_max - np.int16(16),
        "walk_min": s_min - np.int16(16),
    }
    if track_runs:
        run_triple = _run_pack_lut()[chunks]
        longest_t = run_triple >> np.int16(10)
        prefix_t = (run_triple >> np.int16(5)) & np.int16(31)
        suffix_t = run_triple & np.int16(31)
        saturated = prefix_t == np.int16(16)
        # Chunk 0 seeds the merge directly (an empty carry bridges nothing).
        longest = longest_t[:, :, 0].copy()
        trailing = np.where(saturated[:, :, 0], np.int16(16), suffix_t[:, :, 0])
        prefix = prefix_t[:, :, 0].copy()
        prefix_open = saturated[:, :, 0]
        for index in range(1, 4):
            bridged = trailing + prefix_t[:, :, index]
            np.maximum(longest, longest_t[:, :, index], out=longest)
            np.maximum(longest, bridged, out=longest)
            trailing = np.where(
                saturated[:, :, index], trailing + np.int16(16), suffix_t[:, :, index]
            )
            prefix += np.where(prefix_open, prefix_t[:, :, index], np.int16(0))
            prefix_open = prefix_open & saturated[:, :, index]
        summaries["longest"] = longest
        summaries["prefix"] = prefix
        # The run touching the word's end is whatever run the merge carries
        # out of the last chunk.
        summaries["suffix"] = trailing
    return summaries


def walk_extremes(packed: PackedMatrix) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(S_max, S_min, S_final)`` of the ±1 walk, per row (cusum test).

    The walk is reduced 16 bits at a time: each chunk contributes its total
    ±1 delta plus its internal max/min excursion from the tables, so the
    expensive per-bit cumulative sum becomes a 16x narrower cumulative sum
    over chunk deltas.  Tail bits short of a chunk are finished per bit on
    the (at most 15-column) remainder.
    """
    n = packed.n
    if n == 0:
        raise ValueError("walk extremes need at least one bit")
    luts = _chunk_luts(16)
    rows = packed.num_rows
    full = n // 16
    tail = n % 16
    lowest = np.iinfo(np.int32).min
    s_max = np.full(rows, lowest, dtype=np.int64)
    s_min = np.full(rows, -lowest, dtype=np.int64)
    s_final = np.zeros(rows, dtype=np.int64)
    chunks = _chunk_view(packed, 16)
    if full:
        body = chunks[:, :full]
        deltas = luts["delta"][body].astype(np.int32)
        totals = np.cumsum(deltas, axis=1, dtype=np.int32)
        before = totals - deltas
        s_max = (before + luts["walk_max"][body]).max(axis=1).astype(np.int64)
        s_min = (before + luts["walk_min"][body]).min(axis=1).astype(np.int64)
        s_final = totals[:, -1].astype(np.int64)
    if tail:
        tail_chunk = chunks[:, full].astype(np.int64)
        tail_bits = (tail_chunk[:, np.newaxis] >> np.arange(tail)) & 1
        tail_walk = np.cumsum(2 * tail_bits - 1, axis=1) + s_final[:, np.newaxis]
        np.maximum(s_max, tail_walk.max(axis=1), out=s_max)
        np.minimum(s_min, tail_walk.min(axis=1), out=s_min)
        s_final = tail_walk[:, -1]
    return s_max, s_min, s_final
