"""Shared-statistic contexts: the software analogue of the paper's counters.

The paper's central resource-sharing idea is that the hardware block derives
the common sub-statistics of a bit sequence (ones count, run boundaries,
block sums, cyclic pattern counters) *once* and feeds every on-the-fly test
from the same registers.  :class:`SequenceContext` reproduces that in
software: it wraps one bit sequence and lazily computes and memoizes every
derived statistic the statistical tests draw from, so a suite run touches
each bit O(1) times instead of once per test.

:class:`BatchContext` lifts the same statistics to a batch of equal-length
sequences: each statistic is computed with one vectorised 2-D numpy pass
over the whole ``(num_sequences, n)`` bit matrix, and the per-sequence
:class:`SequenceContext` views returned by :meth:`BatchContext.context`
transparently read their row out of the shared result.

Every statistic is integer-valued, so a test that computes its decision
statistic from context values produces *bit-identical* P-values to the
reference implementation that re-scans the raw bits (asserted by
``tests/test_engine_parity.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Protocol, Sequence, Tuple, Union

import numpy as np

import repro.obs as obs
from repro.engine import packed as _packed
from repro.engine.packed import PackedMatrix, pack_matrix
from repro.nist.common import BitsLike, pattern_counts, to_bits

__all__ = [
    "SequenceContext",
    "BatchContext",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "validate_backend",
]

_KERNEL_CALLS = obs.counter(
    "repro_packed_kernel_invocations_total",
    "Packed (64-bits-per-word) kernel dispatches from BatchContext, by kernel.",
    labels=("kernel",),
)

#: A preseeded block-statistic source: given a block length, return the
#: ``(num_sequences, num_blocks)`` statistic array, or ``None`` to decline
#: (the context then falls back to its own kernels).
BlockProvider = Callable[[int], Optional[np.ndarray]]


class SupportsWindowContext(Protocol):
    """Anything that can serve its trailing window as a :class:`BatchContext`.

    The structural type of :class:`repro.engine.streaming.StreamingContext`
    and :class:`~repro.engine.streaming.StreamingBatchContext`; spelled as a
    protocol so this module never imports the streaming layer it underpins.
    """

    def window_context(self, nbits: Optional[int] = None) -> "BatchContext":
        ...

#: Recognised compute backends for batch statistics.
BACKENDS = ("packed", "uint8")

#: The engine default: 64-bits-per-word popcount kernels for the shared
#: statistics, uint8 reference paths for everything else.  Both backends
#: produce bit-identical statistics (and therefore P-values).
DEFAULT_BACKEND = "packed"


def validate_backend(backend: str) -> str:
    """Return ``backend`` if recognised, raise ``ValueError`` otherwise.

    The one validation (and error message) shared by every layer that takes
    a backend knob — context, batch executor, platform, campaign, fleet.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    return backend


def _window_weights(m: int) -> np.ndarray:
    """MSB-first bit weights of an ``m``-bit window."""
    return 1 << np.arange(m - 1, -1, -1)


def _matrix_window_values(matrix: np.ndarray, m: int) -> np.ndarray:
    """Integer value of every overlapping ``m``-bit window, per row.

    ``matrix`` has shape ``(rows, length)``; the result has shape
    ``(rows, length - m + 1)``.  Computed with the MSB-first Horner rule
    ``value = value * 2 + bit`` applied in place so the hot loop touches one
    narrow accumulator array instead of allocating a temporary per offset.
    """
    rows, length = matrix.shape
    num_windows = length - m + 1
    if num_windows <= 0:
        raise ValueError(f"window length m={m} exceeds sequence length n={length}")
    dtype = np.int32 if m <= 15 else np.int64
    values = np.zeros((rows, num_windows), dtype=dtype)
    for offset in range(m):
        np.left_shift(values, 1, out=values)
        values += matrix[:, offset : offset + num_windows]
    return values


def _matrix_block_longest_one_runs(matrix: np.ndarray, block_length: int) -> np.ndarray:
    """Longest run of ones inside each ``block_length``-bit block, per row.

    Works on the flattened zero-padded block matrix: a zero column appended
    to every block guarantees runs of ones never cross block (or row)
    boundaries, so one global run-length scan labels every block at once.
    """
    rows, length = matrix.shape
    num_blocks = length // block_length
    blocks = matrix[:, : num_blocks * block_length].reshape(rows * num_blocks, block_length)
    padded = np.zeros((rows * num_blocks, block_length + 1), dtype=np.int8)
    padded[:, :block_length] = blocks
    flat = np.concatenate([[0], padded.ravel()])
    edges = np.diff(flat.astype(np.int8))
    starts = np.flatnonzero(edges == 1)
    ends = np.flatnonzero(edges == -1)
    longest = np.zeros(rows * num_blocks, dtype=np.int64)
    if starts.size:
        np.maximum.at(longest, starts // (block_length + 1), ends - starts)
    return longest.reshape(rows, num_blocks)


def _run_values_and_lengths(arr: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-run ``(bit value, run length)`` arrays of a 1-D bit sequence."""
    if arr.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    boundaries = np.flatnonzero(np.diff(arr.astype(np.int8))) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [arr.size]])
    return arr[starts].astype(np.int64), (ends - starts).astype(np.int64)


class SequenceContext:
    """Lazily computed, memoized shared statistics of one bit sequence.

    Tests draw their raw statistics (the values the paper's hardware counters
    would hold) from the context; each statistic is derived at most once per
    sequence and shared by every test that needs it — e.g. the serial and
    approximate-entropy tests share the 3-/4-bit cyclic pattern counters, the
    two template tests share the 9-bit window values, and the frequency,
    runs and FIPS monobit tests share the ones count.

    Parameters
    ----------
    bits:
        Any :data:`~repro.nist.common.BitsLike` bit-sequence representation.
    """

    def __init__(self, bits: BitsLike, *, _batch: Optional["BatchContext"] = None, _row: int = 0):
        self._batch = _batch
        self._row = _row
        # Batch-backed contexts resolve their row lazily: when the batch is
        # packed and every requested statistic has a packed kernel, the
        # uint8 matrix is never materialised at all.
        self._bits: Optional[np.ndarray] = to_bits(bits) if _batch is None else None
        self._ones: Optional[int] = None
        self._walk_extremes: Optional[Tuple[int, int, int]] = None
        self._num_runs: Optional[int] = None
        self._runs: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._block_sums: Dict[int, np.ndarray] = {}
        self._block_longest: Dict[int, np.ndarray] = {}
        self._pattern_counts: Dict[Tuple[int, bool], np.ndarray] = {}
        self._window_values: Dict[int, np.ndarray] = {}
        self._block_value_counts: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------- basics
    @property
    def bits(self) -> np.ndarray:
        """The raw uint8 0/1 array (for tests without a shared statistic).

        On a packed-only batch this unpacks just this context's row, so one
        scalar-path test cannot force the whole batch matrix into memory.
        """
        if self._bits is None:
            self._bits = self._batch.row_bits(self._row)
        return self._bits

    @property
    def n(self) -> int:
        """Sequence length."""
        if self._batch is not None:
            return self._batch.n
        return int(self._bits.size)

    def last_bit(self) -> int:
        """The final bit of the sequence (without unpacking a packed batch)."""
        if self.n == 0:
            raise ValueError("empty sequence has no last bit")
        if self._bits is None:
            return int(self._batch.last_bits()[self._row])
        return int(self._bits[-1])

    @property
    def ones(self) -> int:
        """Total number of ones (the hardware's frequency counter)."""
        if self._ones is None:
            if self._batch is not None:
                self._ones = int(self._batch.ones()[self._row])
            else:
                self._ones = int(self._bits.sum())
        return self._ones

    @property
    def zeros(self) -> int:
        """Total number of zeros."""
        return self.n - self.ones

    # ------------------------------------------------------------- walks / runs
    def walk_extremes(self) -> Tuple[int, int, int]:
        """``(S_max, S_min, S_final)`` of the ±1 random walk (cusum test)."""
        if self._walk_extremes is None:
            if self._batch is not None:
                s_max, s_min, s_final = self._batch.walk_extremes()
                self._walk_extremes = (
                    int(s_max[self._row]),
                    int(s_min[self._row]),
                    int(s_final[self._row]),
                )
            elif self.n == 0:
                self._walk_extremes = (0, 0, 0)
            else:
                walk = np.cumsum(2 * self.bits.astype(np.int64) - 1)
                self._walk_extremes = (int(walk.max()), int(walk.min()), int(walk[-1]))
        return self._walk_extremes

    def num_runs(self) -> int:
        """Total number of runs (V_n(obs) of the runs test)."""
        if self._num_runs is None:
            if self._batch is not None:
                self._num_runs = int(self._batch.num_runs()[self._row])
            elif self.n == 0:
                self._num_runs = 0
            else:
                self._num_runs = int(np.count_nonzero(np.diff(self.bits.astype(np.int8)))) + 1
        return self._num_runs

    def runs(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-run ``(bit values, run lengths)`` arrays, in sequence order."""
        if self._runs is None:
            self._runs = _run_values_and_lengths(self.bits)
        return self._runs

    def run_length_histogram(self, cap: int = 6) -> Dict[int, Dict[int, int]]:
        """``{bit: {capped length: count}}`` with lengths >= ``cap`` pooled.

        The FIPS runs test reads this directly; the capped layout matches
        :func:`repro.fips.battery._run_lengths`.
        """
        values, lengths = self.runs()
        histogram = {
            0: {length: 0 for length in range(1, cap + 1)},
            1: {length: 0 for length in range(1, cap + 1)},
        }
        capped = np.minimum(lengths, cap)
        for value in (0, 1):
            counts = np.bincount(capped[values == value], minlength=cap + 1)
            for length in range(1, cap + 1):
                histogram[value][length] = int(counts[length]) if length < counts.size else 0
        return histogram

    def longest_run(self) -> int:
        """Length of the longest run of identical bits (FIPS long-run test)."""
        _, lengths = self.runs()
        return int(lengths.max()) if lengths.size else 0

    # ------------------------------------------------------------- block stats
    def block_sums(self, block_length: int) -> np.ndarray:
        """Ones count of each full ``block_length``-bit block (int64)."""
        if block_length not in self._block_sums:
            if self._batch is not None:
                self._block_sums[block_length] = self._batch.block_sums(block_length)[self._row]
            else:
                num_blocks = self.n // block_length
                trimmed = self.bits[: num_blocks * block_length]
                self._block_sums[block_length] = trimmed.reshape(
                    num_blocks, block_length
                ).sum(axis=1, dtype=np.int64)
        return self._block_sums[block_length]

    def block_longest_one_runs(self, block_length: int) -> np.ndarray:
        """Longest run of ones within each full block (longest-run test)."""
        if block_length not in self._block_longest:
            if self._batch is not None:
                self._block_longest[block_length] = self._batch.block_longest_one_runs(
                    block_length
                )[self._row]
            else:
                self._block_longest[block_length] = _matrix_block_longest_one_runs(
                    self.bits[np.newaxis, :], block_length
                )[0]
        return self._block_longest[block_length]

    def block_value_counts(self, block_length: int) -> np.ndarray:
        """Histogram of non-overlapping block values (FIPS poker test)."""
        if block_length not in self._block_value_counts:
            if self._batch is not None:
                self._block_value_counts[block_length] = self._batch.block_value_counts(
                    block_length
                )[self._row]
            else:
                num_blocks = self.n // block_length
                trimmed = self.bits[: num_blocks * block_length].astype(np.int64)
                values = trimmed.reshape(num_blocks, block_length) @ _window_weights(block_length)
                self._block_value_counts[block_length] = np.bincount(
                    values, minlength=1 << block_length
                ).astype(np.int64)
        return self._block_value_counts[block_length]

    # ------------------------------------------------------------- pattern stats
    def pattern_counts(self, m: int, *, cyclic: bool = True) -> np.ndarray:
        """Occurrences of every overlapping ``m``-bit pattern (2^m entries)."""
        key = (m, cyclic)
        if key not in self._pattern_counts:
            if self._batch is not None and m > 0:
                self._pattern_counts[key] = self._batch.pattern_counts(m, cyclic=cyclic)[self._row]
            else:
                self._pattern_counts[key] = pattern_counts(self.bits, m, cyclic=cyclic)
        return self._pattern_counts[key]

    def window_values(self, m: int) -> np.ndarray:
        """Integer value of every (non-cyclic) ``m``-bit window (template tests)."""
        if m not in self._window_values:
            if self._batch is not None:
                self._window_values[m] = self._batch.window_values(m)[self._row]
            else:
                self._window_values[m] = _matrix_window_values(self.bits[np.newaxis, :], m)[0]
        return self._window_values[m]


class BatchContext:
    """Shared statistics of a batch of equal-length sequences.

    Every statistic is computed lazily with one vectorised pass over the
    ``(num_sequences, n)`` bit matrix and cached; per-sequence contexts
    created with :meth:`context` read their row from the shared arrays.

    With the default ``backend="packed"`` the cheap shared statistics (ones,
    block ones, runs, longest run per block, walk extremes) run on the
    64-bits-per-word :mod:`repro.engine.packed` kernels over a memoized
    packed view of the matrix; everything else falls back to the uint8
    reference paths.  ``backend="uint8"`` forces the reference paths
    throughout.  The two backends are bit-identical statistic for statistic.
    The constructor also accepts a prepacked
    :class:`~repro.engine.packed.PackedMatrix` directly, in which case the
    uint8 matrix is only materialised if a non-packed statistic needs it.
    """

    @staticmethod
    def as_matrix(sequences: Union[np.ndarray, Sequence[BitsLike]]) -> np.ndarray:
        """Normalise ``sequences`` to a validated 2-D uint8 bit matrix.

        A uint8 array that already has the right shape — e.g. one produced
        by :meth:`~repro.trng.source.EntropySource.generate_matrix` — is
        passed through without copying, so source blocks flow into the
        engine with no intermediate :class:`BitSequence` materialisation.
        """
        matrix = np.ascontiguousarray(sequences, dtype=np.uint8)
        if matrix.ndim != 2:
            raise ValueError("expected a 2-D (num_sequences, n) bit matrix")
        if matrix.size and int(matrix.max()) > 1:
            raise ValueError("bit matrix must contain only 0 and 1 values")
        return matrix

    @classmethod
    def from_blocks(
        cls, blocks: Iterable[np.ndarray], backend: str = DEFAULT_BACKEND
    ) -> "BatchContext":
        """Batch context over equal-length source blocks (1-D uint8 arrays)."""
        return cls(np.vstack([np.atleast_1d(block) for block in blocks]), backend=backend)

    def __init__(
        self,
        matrix: Union[np.ndarray, PackedMatrix, Sequence[BitsLike]],
        backend: str = DEFAULT_BACKEND,
    ):
        self.backend = validate_backend(backend)
        if isinstance(matrix, PackedMatrix):
            # Prepacked input (e.g. the fleet scheduler's round matrix):
            # the uint8 view is only materialised if a non-packed statistic
            # asks for it (or the packer retained its source matrix).
            self._packed: Optional[PackedMatrix] = matrix
            self._matrix: Optional[np.ndarray] = matrix.source
            self._n = matrix.n
            self._num_sequences = matrix.num_rows
        else:
            matrix = np.ascontiguousarray(matrix, dtype=np.uint8)
            if matrix.ndim != 2:
                raise ValueError("BatchContext expects a 2-D (num_sequences, n) bit matrix")
            self._matrix = matrix
            self._packed = None
            self._num_sequences, self._n = matrix.shape
        self._ones: Optional[np.ndarray] = None
        self._last_bits: Optional[np.ndarray] = None
        self._walk_extremes: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._num_runs: Optional[np.ndarray] = None
        self._block_sums: Dict[int, np.ndarray] = {}
        self._block_longest: Dict[int, np.ndarray] = {}
        self._pattern_counts: Dict[Tuple[int, bool], np.ndarray] = {}
        self._window_values: Dict[int, np.ndarray] = {}
        self._block_value_counts: Dict[int, np.ndarray] = {}
        self._block_sums_provider: Optional[BlockProvider] = None
        self._block_longest_provider: Optional[BlockProvider] = None

    @classmethod
    def from_streaming(
        cls, stream: SupportsWindowContext, nbits: Optional[int] = None
    ) -> "BatchContext":
        """The trailing window of a streaming context, as a batch context.

        The bridge the tentpole names: ``run_batch`` and the cheap-test
        registry run unchanged on the rolled window, because the streaming
        side hands back a regular :class:`BatchContext` preseeded with its
        incrementally maintained statistics.  Accepts anything exposing
        ``window_context()`` — a ``StreamingContext`` or a
        ``StreamingBatchContext``.
        """
        return stream.window_context(nbits)

    def preseed(
        self,
        *,
        ones: Optional[np.ndarray] = None,
        num_runs: Optional[np.ndarray] = None,
        walk_extremes: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None,
        last_bits: Optional[np.ndarray] = None,
        block_sums_provider: Optional[BlockProvider] = None,
        block_longest_provider: Optional[BlockProvider] = None,
    ) -> "BatchContext":
        """Seed statistic caches with externally maintained values.

        The streaming contexts roll these statistics incrementally and hand
        them over here so the batch executor never recomputes them.  Seeded
        arrays must match the batch shape; block providers are consulted on
        cache miss and may decline (return ``None``) to fall back to the
        regular kernels.  Callers guarantee seeded values equal what the
        context would compute — parity is enforced by the streaming test
        suite, not re-checked here.  Returns ``self`` for chaining.
        """
        expected = (self.num_sequences,)
        for name, value in (("ones", ones), ("num_runs", num_runs), ("last_bits", last_bits)):
            if value is not None and value.shape != expected:
                raise ValueError(f"preseed {name} has shape {value.shape}, expected {expected}")
        if ones is not None:
            self._ones = ones
        if num_runs is not None:
            self._num_runs = num_runs
        if walk_extremes is not None:
            if any(part.shape != expected for part in walk_extremes):
                raise ValueError(f"preseed walk_extremes parts must have shape {expected}")
            self._walk_extremes = walk_extremes
        if last_bits is not None:
            self._last_bits = last_bits
        if block_sums_provider is not None:
            self._block_sums_provider = block_sums_provider
        if block_longest_provider is not None:
            self._block_longest_provider = block_longest_provider
        return self

    @property
    def matrix(self) -> np.ndarray:
        """The ``(num_sequences, n)`` uint8 bit matrix (unpacked on demand)."""
        if self._matrix is None:
            self._matrix = self._packed.unpack()
        return self._matrix

    def packed(self) -> PackedMatrix:
        """The memoized packed-word view of the matrix (packed on demand)."""
        if self._packed is None:
            self._packed = pack_matrix(self._matrix, keep_source=True)
        return self._packed

    def packed_only(self) -> Optional[PackedMatrix]:
        """The packed view when the uint8 matrix is *not* materialised.

        Chunked consumers (the batched heavy kernels) use this to unpack
        row windows on the fly instead of forcing the full matrix; returns
        ``None`` when the uint8 matrix already exists (then slicing it is
        free).
        """
        if self._matrix is None:
            return self._packed
        return None

    def row_bits(self, row: int) -> np.ndarray:
        """One sequence's uint8 bits, unpacking only that row when packed."""
        if self._matrix is not None:
            return self._matrix[row]
        return self._packed.row(row)

    def _use_packed(self) -> bool:
        return self.backend == "packed" and self._n > 0

    @property
    def num_sequences(self) -> int:
        return int(self._num_sequences)

    @property
    def n(self) -> int:
        return int(self._n)

    def context(self, row: int) -> SequenceContext:
        """A per-sequence context backed by this batch's shared statistics."""
        if not 0 <= row < self.num_sequences:
            raise IndexError(f"row {row} out of range for batch of {self.num_sequences}")
        return SequenceContext(None, _batch=self, _row=row)

    def contexts(self) -> Tuple[SequenceContext, ...]:
        """One batch-backed context per sequence."""
        return tuple(self.context(i) for i in range(self.num_sequences))

    # ------------------------------------------------------------- statistics
    def ones(self) -> np.ndarray:
        if self._ones is None:
            if self._use_packed():
                _KERNEL_CALLS.inc(kernel="ones_count")
                self._ones = _packed.ones_count(self.packed())
            else:
                self._ones = self.matrix.sum(axis=1, dtype=np.int64)
        return self._ones

    def last_bits(self) -> np.ndarray:
        """The final bit of every sequence (uint8, no unpack on packed input)."""
        if self._last_bits is None:
            if self._use_packed():
                _KERNEL_CALLS.inc(kernel="last_bits")
                self._last_bits = _packed.last_bits(self.packed())
            else:
                self._last_bits = self.matrix[:, -1]
        return self._last_bits

    def walk_extremes(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._walk_extremes is None:
            if self._use_packed():
                _KERNEL_CALLS.inc(kernel="walk_extremes")
                self._walk_extremes = _packed.walk_extremes(self.packed())
            else:
                walk = np.cumsum(2 * self.matrix.astype(np.int64) - 1, axis=1)
                self._walk_extremes = (walk.max(axis=1), walk.min(axis=1), walk[:, -1])
        return self._walk_extremes

    def num_runs(self) -> np.ndarray:
        if self._num_runs is None:
            if self._use_packed():
                _KERNEL_CALLS.inc(kernel="transition_counts")
                self._num_runs = _packed.transition_counts(self.packed()) + 1
            else:
                changes = np.count_nonzero(np.diff(self.matrix.astype(np.int8), axis=1), axis=1)
                self._num_runs = (changes + 1).astype(np.int64)
        return self._num_runs

    def block_sums(self, block_length: int) -> np.ndarray:
        if block_length not in self._block_sums:
            if self._block_sums_provider is not None:
                provided = self._block_sums_provider(block_length)
                if provided is not None:
                    self._block_sums[block_length] = provided
                    return provided
            if self._use_packed() and _packed.supports_block_ones(block_length, self.n):
                _KERNEL_CALLS.inc(kernel="block_ones")
                self._block_sums[block_length] = _packed.block_ones(
                    self.packed(), block_length
                )
            else:
                num_blocks = self.n // block_length
                trimmed = self.matrix[:, : num_blocks * block_length]
                self._block_sums[block_length] = trimmed.reshape(
                    self.num_sequences, num_blocks, block_length
                ).sum(axis=2, dtype=np.int64)
        return self._block_sums[block_length]

    def block_longest_one_runs(self, block_length: int) -> np.ndarray:
        if block_length not in self._block_longest:
            if self._block_longest_provider is not None:
                provided = self._block_longest_provider(block_length)
                if provided is not None:
                    self._block_longest[block_length] = provided
                    return provided
            if self._use_packed() and _packed.supports_block_longest_one_runs(
                block_length, self.n
            ):
                _KERNEL_CALLS.inc(kernel="block_longest_one_runs")
                self._block_longest[block_length] = _packed.block_longest_one_runs(
                    self.packed(), block_length
                )
            else:
                self._block_longest[block_length] = _matrix_block_longest_one_runs(
                    self.matrix, block_length
                )
        return self._block_longest[block_length]

    def block_value_counts(self, block_length: int) -> np.ndarray:
        if block_length not in self._block_value_counts:
            num_blocks = self.n // block_length
            trimmed = self.matrix[:, : num_blocks * block_length].astype(np.int64)
            values = trimmed.reshape(
                self.num_sequences, num_blocks, block_length
            ) @ _window_weights(block_length)
            self._block_value_counts[block_length] = self._bincount_rows(
                values, 1 << block_length
            )
        return self._block_value_counts[block_length]

    def pattern_counts(self, m: int, *, cyclic: bool = True) -> np.ndarray:
        key = (m, cyclic)
        if key not in self._pattern_counts:
            if m <= 0:
                raise ValueError("pattern length m must be positive for batch counts")
            counts = self._bincount_rows(self.window_values(m), 1 << m)
            if cyclic and m > 1:
                # The cyclic convention adds the m-1 windows wrapping from the
                # tail into the head; their values come from the narrow
                # (rows, 2(m-1)) seam matrix instead of a full extended copy.
                seam = np.concatenate(
                    [self.matrix[:, -(m - 1) :], self.matrix[:, : m - 1]], axis=1
                )
                counts = counts + self._bincount_rows(
                    _matrix_window_values(seam, m), 1 << m
                )
            self._pattern_counts[key] = counts
        return self._pattern_counts[key]

    def window_values(self, m: int) -> np.ndarray:
        if m not in self._window_values:
            self._window_values[m] = _matrix_window_values(self.matrix, m)
        return self._window_values[m]

    def _bincount_rows(self, values: np.ndarray, num_bins: int) -> np.ndarray:
        """Per-row bincount via one flat bincount with row offsets."""
        rows = values.shape[0]
        dtype = np.int32 if rows * num_bins < (1 << 31) else np.int64
        offsets = np.arange(rows, dtype=dtype)[:, np.newaxis] * num_bins
        flat = np.bincount(
            (values.astype(dtype, copy=False) + offsets).ravel(),
            minlength=rows * num_bins,
        )
        return flat.reshape(rows, num_bins).astype(np.int64)
