"""Batch executor: many sequences, shared statistics, optional process pool.

``run_batch`` is the engine's answer to the ROADMAP's many-sequence
monitoring traffic: instead of evaluating sequences one at a time (each test
re-scanning the same bitstream), a batch of equal-length sequences shares a
:class:`~repro.engine.context.BatchContext` whose statistics are computed
with single vectorised 2-D passes over the whole bit matrix.  The cheap
tests (frequency, block frequency, runs, longest run, templates, serial,
approximate entropy, cusum) then reduce to scalar decision math per
sequence; the expensive ones (rank, DFT, universal, linear complexity,
random excursions) can fan out over a process pool with ``processes > 1``.

Results are bit-identical to running each test directly on each sequence —
asserted by ``tests/test_engine_parity.py``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.engine.context import (
    DEFAULT_BACKEND,
    BatchContext,
    SequenceContext,
    validate_backend,
)
from repro.engine.packed import PackedMatrix
from repro.engine.registry import (
    DEFAULT_REGISTRY,
    NIST_NUMBER_TO_ID,
    RegisteredTest,
    TestRegistry,
    TestSpec,
)
from repro.nist.common import TestResult, to_bits

__all__ = ["EngineReport", "run_batch"]


@dataclass
class EngineReport:
    """Per-sequence outcome of a batch run, keyed by canonical test id."""

    n: int
    results: Dict[str, TestResult] = field(default_factory=dict)
    errors: Dict[str, str] = field(default_factory=dict)
    #: Compute backend the shared statistics ran on ("packed" word kernels
    #: or the "uint8" reference paths); P-values are identical either way.
    backend: str = "uint8"

    def passed(self, alpha: float = 0.01) -> bool:
        """True when every test that ran accepted the randomness hypothesis."""
        return all(result.passed(alpha) for result in self.results.values())

    def failing_tests(self, alpha: float = 0.01) -> List[str]:
        """Ids of tests that rejected the randomness hypothesis."""
        return [tid for tid, result in self.results.items() if not result.passed(alpha)]

    def p_values(self) -> Dict[str, float]:
        """Primary P-value per executed test."""
        return {tid: result.p_value for tid, result in self.results.items()}


def _pool_worker(payload):
    """Run one (test, sequence) pair in a worker process.

    Only tests from the default registry are pooled, so the worker can
    resolve the test id against its own imported copy.
    """
    test_id, raw, kwargs = payload
    bits = np.frombuffer(raw, dtype=np.uint8)
    context = SequenceContext(bits)
    test = DEFAULT_REGISTRY.resolve(test_id)
    try:
        return "ok", test.run(context, **kwargs)
    except Exception as exc:  # noqa: BLE001 - any test failure becomes a report entry
        # Return the exception itself so skip_errors=False can re-raise the
        # original type, exactly like the inline path.
        return "error", exc


def _describe_error(exc: Exception) -> str:
    """Error string recorded in :attr:`EngineReport.errors`.

    ``ValueError`` messages (parameter/length constraints) are self-
    explanatory; anything else keeps its exception type so an unexpected
    crash inside a test stays distinguishable from a rejected input.
    """
    if isinstance(exc, ValueError):
        return str(exc)
    return f"{type(exc).__name__}: {exc}"


def run_batch(
    sequences,
    tests: Optional[Sequence[TestSpec]] = None,
    parameters: Optional[Dict[TestSpec, Dict[str, object]]] = None,
    processes: Optional[int] = None,
    registry: Optional[TestRegistry] = None,
    skip_errors: bool = True,
    backend: str = DEFAULT_BACKEND,
) -> List[EngineReport]:
    """Evaluate ``tests`` on every sequence in ``sequences``.

    Parameters
    ----------
    sequences:
        Iterable of bit sequences (any ``BitsLike``), a 2-D
        ``(num_sequences, n)`` uint8 matrix straight from
        :meth:`~repro.trng.source.EntropySource.generate_matrix` — the
        zero-copy fast path used by the block-native source layer — or a
        prepacked :class:`~repro.engine.packed.PackedMatrix` (e.g. from
        ``generate_matrix(..., packed=True)`` or the fleet scheduler), in
        which case the uint8 matrix is only materialised if a statistic
        without a packed kernel needs it.
        Equal-length sequences are stacked into one bit matrix and share
        vectorised statistics; mixed lengths fall back to per-sequence
        contexts.
    tests:
        Test specs resolvable by the registry — canonical ids
        (``"nist.serial"``, ``"fips.poker"``, ``"hw.platform"``), NIST
        numbers, or :class:`RegisteredTest` objects.  Defaults to the 15
        NIST tests.
    parameters:
        Optional per-test keyword arguments keyed by any resolvable spec.
    processes:
        When > 1, tests marked ``expensive`` in the default registry are
        fanned out over a process pool of that size.
    registry:
        Registry to resolve specs against (default:
        :data:`~repro.engine.registry.DEFAULT_REGISTRY`).  Pool dispatch is
        only available for the default registry, since workers re-resolve
        tests by id.
    skip_errors:
        When True (default), any exception from a test is recorded in
        :attr:`EngineReport.errors` instead of aborting the batch, so one
        misbehaving test cannot leave the other reports partially filled.
    backend:
        ``"packed"`` (default) computes the cheap shared statistics on the
        64-bits-per-word kernels of :mod:`repro.engine.packed`; ``"uint8"``
        forces the byte-per-bit reference paths.  P-values are bit-identical
        either way (the backend is recorded in
        :attr:`EngineReport.backend`).

    Returns
    -------
    list of EngineReport
        One report per input sequence, in input order.
    """
    validate_backend(backend)
    registry = registry if registry is not None else DEFAULT_REGISTRY
    batch: Optional[BatchContext] = None
    if isinstance(sequences, PackedMatrix):
        batch = BatchContext(sequences, backend=backend)
    elif isinstance(sequences, np.ndarray) and sequences.ndim == 2:
        batch = BatchContext(BatchContext.as_matrix(sequences), backend=backend)
    if batch is not None:
        if batch.num_sequences == 0:
            return []
        arrays: Optional[List[np.ndarray]] = None
        num_sequences = batch.num_sequences
    else:
        arrays = [to_bits(sequence) for sequence in sequences]
        num_sequences = len(arrays)
    if not num_sequences:
        return []
    specs = list(tests) if tests is not None else sorted(NIST_NUMBER_TO_ID)
    # Dedupe after resolution (first occurrence wins): the same test given
    # twice — e.g. by number and by id alias — would otherwise run twice and
    # silently overwrite its own result.
    resolved: List[RegisteredTest] = []
    seen_ids = set()
    for spec in specs:
        test = registry.resolve(spec)
        if test.id not in seen_ids:
            seen_ids.add(test.id)
            resolved.append(test)
    params: Dict[str, Dict[str, object]] = {}
    for spec, kwargs in (parameters or {}).items():
        test_id = registry.resolve(spec).id
        if test_id in params and params[test_id] != dict(kwargs):
            raise ValueError(
                f"conflicting parameters for test {test_id!r}: "
                "the same test was keyed under multiple aliases"
            )
        params[test_id] = dict(kwargs)

    if batch is None:
        lengths = {arr.size for arr in arrays}
        if len(lengths) == 1 and len(arrays) > 1:
            batch = BatchContext(np.vstack(arrays), backend=backend)
    if batch is not None:
        contexts: List[SequenceContext] = list(batch.contexts())
        reports = [
            EngineReport(n=batch.n, backend=batch.backend) for _ in range(num_sequences)
        ]
    else:
        # Mixed-length fallback: per-sequence contexts on the uint8 paths.
        contexts = [SequenceContext(arr) for arr in arrays]
        reports = [EngineReport(n=int(arr.size), backend="uint8") for arr in arrays]

    pooled: List[RegisteredTest] = []
    if processes is not None and processes > 1 and registry is DEFAULT_REGISTRY:
        pooled = [test for test in resolved if test.expensive]
    inline = [test for test in resolved if test not in pooled]

    for test in inline:
        kwargs = params.get(test.id, {})
        for report, context in zip(reports, contexts):
            try:
                report.results[test.id] = test.run(context, **kwargs)
            except Exception as exc:  # noqa: BLE001 - see skip_errors docs
                if not skip_errors:
                    raise
                report.errors[test.id] = _describe_error(exc)

    if pooled:
        if arrays is None:
            # Pool workers need raw bits; packed-only input is expanded here
            # (once, memoized on the batch) rather than per worker.
            arrays = list(batch.matrix)
        payloads = [arr.tobytes() for arr in arrays]
        with ProcessPoolExecutor(max_workers=processes) as pool:
            futures = {}
            for test in pooled:
                kwargs = params.get(test.id, {})
                for index, payload in enumerate(payloads):
                    future = pool.submit(_pool_worker, (test.id, payload, kwargs))
                    futures[future] = (index, test.id)
            for future in as_completed(futures):
                index, test_id = futures[future]
                status, outcome = future.result()
                if status == "ok":
                    reports[index].results[test_id] = outcome
                elif skip_errors:
                    reports[index].errors[test_id] = _describe_error(outcome)
                else:
                    raise outcome

    return reports
