"""Batch executor: many sequences, shared statistics, pool-free heavy tests.

``run_batch`` is the engine's answer to the ROADMAP's many-sequence
monitoring traffic: instead of evaluating sequences one at a time (each test
re-scanning the same bitstream), a batch of equal-length sequences shares a
:class:`~repro.engine.context.BatchContext` whose statistics are computed
with single vectorised 2-D passes over the whole bit matrix.  The cheap
tests (frequency, block frequency, runs, longest run, templates, serial,
approximate entropy, cusum) reduce to scalar decision math per sequence; the
expensive ones (rank, DFT, universal, linear complexity, random excursions)
run through the batch-native kernels of :mod:`repro.engine.heavy` on the
packed backend, so the full 15-test suite is pool-free by default.  The
process pool survives only as an explicit opt-in fallback (``processes >
1``) for tests without a usable batch kernel — the uint8 backend, mixed
lengths, or a :class:`~repro.engine.heavy.BatchFallback` geometry.

Which path each test actually took is recorded per report in
:attr:`EngineReport.execution_paths` (``"batched"`` / ``"inline"`` /
``"pooled"``).  Results are bit-identical to running each test directly on
each sequence — asserted by ``tests/test_engine_parity.py`` and
``tests/test_heavy_batch_parity.py``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

import repro.obs as obs
from repro.engine.context import (
    DEFAULT_BACKEND,
    BatchContext,
    SequenceContext,
    validate_backend,
)
from repro.engine.heavy import BatchFallback
from repro.engine.packed import WORD_DTYPE, PackedMatrix
from repro.engine.registry import (
    DEFAULT_REGISTRY,
    NIST_NUMBER_TO_ID,
    RegisteredTest,
    TestRegistry,
    TestSpec,
)
from repro.nist.common import BitsLike, TestResult, to_bits

__all__ = ["EngineReport", "run_batch"]

_TEST_SECONDS = obs.histogram(
    "repro_engine_test_seconds",
    "Wall time of one test's dispatch over a whole batch, by canonical test id.",
    labels=("test",),
)
_TESTS_TOTAL = obs.counter(
    "repro_engine_tests_total",
    "Per-sequence test evaluations by execution path (batched/inline/pooled).",
    labels=("path",),
)
_BITS_EVALUATED = obs.counter(
    "repro_engine_bits_evaluated_total",
    "Bits entering run_batch (sequences x sequence length).",
)


@dataclass
class EngineReport:
    """Per-sequence outcome of a batch run, keyed by canonical test id."""

    n: int
    results: Dict[str, TestResult] = field(default_factory=dict)
    errors: Dict[str, str] = field(default_factory=dict)
    #: Compute backend the shared statistics ran on ("packed" word kernels
    #: or the "uint8" reference paths); P-values are identical either way.
    backend: str = "uint8"
    #: Execution path per test id: "batched" (batch-native kernel over the
    #: whole batch), "inline" (per-sequence scalar in this process) or
    #: "pooled" (per-sequence scalar in a worker process).  Benchmarks and
    #: the fleet summary read this to prove the pool-free path was taken.
    execution_paths: Dict[str, str] = field(default_factory=dict)

    def passed(self, alpha: float = 0.01) -> bool:
        """True when every test that ran accepted the randomness hypothesis."""
        return all(result.passed(alpha) for result in self.results.values())

    def failing_tests(self, alpha: float = 0.01) -> List[str]:
        """Ids of tests that rejected the randomness hypothesis."""
        return [tid for tid, result in self.results.items() if not result.passed(alpha)]

    def p_values(self) -> Dict[str, float]:
        """Primary P-value per executed test."""
        return {tid: result.p_value for tid, result in self.results.items()}


def _pool_worker(payload):
    """Run one (test, sequence) pair in a worker process.

    Only tests from the default registry are pooled, so the worker can
    resolve the test id against its own imported copy.  The sequence ships
    either as raw uint8 bits (``"bits"``) or — when the parent batch was
    packed-only — as that row's packed 64-bit words (``"words"``, 1/8th the
    pickle traffic), unpacked lazily here in the worker.
    """
    test_id, kind, raw, n, kwargs = payload
    if kind == "words":
        words = np.frombuffer(raw, dtype=WORD_DTYPE).reshape(1, -1)
        bits = PackedMatrix(words, n).row(0)
    else:
        bits = np.frombuffer(raw, dtype=np.uint8)
    context = SequenceContext(bits)
    test = DEFAULT_REGISTRY.resolve(test_id)
    try:
        return "ok", test.run(context, **kwargs)
    except Exception as exc:  # noqa: BLE001 - any test failure becomes a report entry
        # Return the exception itself so skip_errors=False can re-raise the
        # original type, exactly like the inline path.
        return "error", exc


def _describe_error(exc: Exception) -> str:
    """Error string recorded in :attr:`EngineReport.errors`.

    ``ValueError`` messages (parameter/length constraints) are self-
    explanatory; anything else keeps its exception type so an unexpected
    crash inside a test stays distinguishable from a rejected input.
    """
    if isinstance(exc, ValueError):
        return str(exc)
    return f"{type(exc).__name__}: {exc}"


def run_batch(
    sequences: Union[np.ndarray, PackedMatrix, BatchContext, Iterable[BitsLike]],
    tests: Optional[Sequence[TestSpec]] = None,
    parameters: Optional[Dict[TestSpec, Dict[str, object]]] = None,
    processes: Optional[int] = None,
    registry: Optional[TestRegistry] = None,
    skip_errors: bool = True,
    backend: str = DEFAULT_BACKEND,
) -> List[EngineReport]:
    """Evaluate ``tests`` on every sequence in ``sequences``.

    Parameters
    ----------
    sequences:
        Iterable of bit sequences (any ``BitsLike``), a 2-D
        ``(num_sequences, n)`` uint8 matrix straight from
        :meth:`~repro.trng.source.EntropySource.generate_matrix` — the
        zero-copy fast path used by the block-native source layer — or a
        prepacked :class:`~repro.engine.packed.PackedMatrix` (e.g. from
        ``generate_matrix(..., packed=True)`` or the fleet scheduler), in
        which case the uint8 matrix is only materialised if a statistic
        without a packed kernel needs it.
        A prebuilt :class:`~repro.engine.context.BatchContext` — e.g. the
        preseeded window of a streaming context via
        :meth:`BatchContext.from_streaming` — is used as-is, statistics
        already cached in it included; its own backend wins over the
        ``backend`` argument.
        Equal-length sequences are stacked into one bit matrix and share
        vectorised statistics; mixed lengths fall back to per-sequence
        contexts.
    tests:
        Test specs resolvable by the registry — canonical ids
        (``"nist.serial"``, ``"fips.poker"``, ``"hw.platform"``), NIST
        numbers, or :class:`RegisteredTest` objects.  Defaults to the 15
        NIST tests.
    parameters:
        Optional per-test keyword arguments keyed by any resolvable spec.
    processes:
        Explicit opt-in fallback knob.  When > 1, ``expensive`` tests of the
        default registry that could *not* take a batch-native kernel (uint8
        backend, mixed lengths, single sequences, or a
        :class:`~repro.engine.heavy.BatchFallback` geometry) are fanned out
        over a process pool of that size; on the default packed batch path
        the pool is never touched.
    registry:
        Registry to resolve specs against (default:
        :data:`~repro.engine.registry.DEFAULT_REGISTRY`).  Pool dispatch is
        only available for the default registry, since workers re-resolve
        tests by id.
    skip_errors:
        When True (default), any exception from a test is recorded in
        :attr:`EngineReport.errors` instead of aborting the batch, so one
        misbehaving test cannot leave the other reports partially filled.
    backend:
        ``"packed"`` (default) computes the cheap shared statistics on the
        64-bits-per-word kernels of :mod:`repro.engine.packed`; ``"uint8"``
        forces the byte-per-bit reference paths.  P-values are bit-identical
        either way (the backend is recorded in
        :attr:`EngineReport.backend`).

    Returns
    -------
    list of EngineReport
        One report per input sequence, in input order.
    """
    with obs.trace("run_batch", backend=backend):
        return _run_batch(
            sequences, tests, parameters, processes, registry, skip_errors, backend
        )


def _run_batch(
    sequences: Union[np.ndarray, PackedMatrix, BatchContext, Iterable[BitsLike]],
    tests: Optional[Sequence[TestSpec]],
    parameters: Optional[Dict[TestSpec, Dict[str, object]]],
    processes: Optional[int],
    registry: Optional[TestRegistry],
    skip_errors: bool,
    backend: str,
) -> List[EngineReport]:
    """The traced body of :func:`run_batch` (runs under its root span)."""
    validate_backend(backend)
    registry = registry if registry is not None else DEFAULT_REGISTRY
    with obs.span("pack"):
        batch: Optional[BatchContext] = None
        if isinstance(sequences, BatchContext):
            # Prebuilt (possibly preseeded) context: run on it directly so
            # its cached statistics are reused, not recomputed.
            batch = sequences
        elif isinstance(sequences, PackedMatrix):
            batch = BatchContext(sequences, backend=backend)
        elif isinstance(sequences, np.ndarray) and sequences.ndim == 2:
            batch = BatchContext(BatchContext.as_matrix(sequences), backend=backend)
        if batch is not None:
            if batch.num_sequences == 0:
                return []
            arrays: Optional[List[np.ndarray]] = None
            num_sequences = batch.num_sequences
        else:
            arrays = [to_bits(sequence) for sequence in sequences]
            num_sequences = len(arrays)
        if not num_sequences:
            return []
        specs = list(tests) if tests is not None else sorted(NIST_NUMBER_TO_ID)
        # Dedupe after resolution (first occurrence wins): the same test
        # given twice — e.g. by number and by id alias — would otherwise run
        # twice and silently overwrite its own result.
        resolved: List[RegisteredTest] = []
        seen_ids = set()
        for spec in specs:
            test = registry.resolve(spec)
            if test.id not in seen_ids:
                seen_ids.add(test.id)
                resolved.append(test)
        params: Dict[str, Dict[str, object]] = {}
        for spec, kwargs in (parameters or {}).items():
            test_id = registry.resolve(spec).id
            if test_id in params and params[test_id] != dict(kwargs):
                raise ValueError(
                    f"conflicting parameters for test {test_id!r}: "
                    "the same test was keyed under multiple aliases"
                )
            params[test_id] = dict(kwargs)

        if batch is None:
            lengths = {arr.size for arr in arrays}
            if len(lengths) == 1 and len(arrays) > 1:
                batch = BatchContext(np.vstack(arrays), backend=backend)
        if batch is not None:
            contexts: List[SequenceContext] = list(batch.contexts())
            reports = [
                EngineReport(n=batch.n, backend=batch.backend)
                for _ in range(num_sequences)
            ]
        else:
            # Mixed-length fallback: per-sequence contexts on the uint8 paths.
            contexts = [SequenceContext(arr) for arr in arrays]
            reports = [EngineReport(n=int(arr.size), backend="uint8") for arr in arrays]
    _BITS_EVALUATED.inc(sum(report.n for report in reports))

    pool_allowed = (
        processes is not None and processes > 1 and registry is DEFAULT_REGISTRY
    )

    def run_inline(test: RegisteredTest, kwargs: Dict[str, object]) -> None:
        # The dispatch span covers the per-sequence test evaluations; the
        # decision span the fold of outcomes into reports.  Collecting
        # outcomes first keeps skip_errors=False raising from inside the
        # dispatch span, exactly where the failure happened.
        outcomes: List[Tuple[bool, object]] = []
        with obs.span("dispatch", test=test.id, path="inline") as dispatch_span:
            for context in contexts:
                try:
                    outcomes.append((True, test.run(context, **kwargs)))
                except Exception as exc:  # noqa: BLE001 - see skip_errors docs
                    if not skip_errors:
                        raise
                    outcomes.append((False, exc))
        _TEST_SECONDS.observe(dispatch_span.duration_s, test=test.id)
        _TESTS_TOTAL.inc(len(reports), path="inline")
        with obs.span("decision", test=test.id):
            for report, (ok, value) in zip(reports, outcomes):
                report.execution_paths[test.id] = "inline"
                if ok:
                    report.results[test.id] = value  # type: ignore[assignment]
                else:
                    report.errors[test.id] = _describe_error(value)  # type: ignore[arg-type]

    pooled: List[RegisteredTest] = []
    for test in resolved:
        kwargs = params.get(test.id, {})
        if (
            batch is not None
            and test.batch_runner is not None
            and batch.backend == "packed"
        ):
            # Batch-native kernel over the whole packed batch: the pool-free
            # default for the heavyweight tests.
            try:
                with obs.span("dispatch", test=test.id, path="batched") as dispatch_span:
                    outcomes = test.run_batch(batch, **kwargs)
            except BatchFallback:
                # Parameters outside the kernel's fast path: rerun this one
                # test per sequence (pooled only if explicitly opted in).
                if pool_allowed and test.expensive:
                    pooled.append(test)
                else:
                    run_inline(test, kwargs)
                continue
            except Exception as exc:  # noqa: BLE001 - see skip_errors docs
                if not skip_errors:
                    raise
                # Batch kernels validate parameters once for the whole
                # batch (all rows share n), so the error is uniform.
                message = _describe_error(exc)
                _TESTS_TOTAL.inc(len(reports), path="batched")
                for report in reports:
                    report.execution_paths[test.id] = "batched"
                    report.errors[test.id] = message
                continue
            _TEST_SECONDS.observe(dispatch_span.duration_s, test=test.id)
            _TESTS_TOTAL.inc(len(reports), path="batched")
            with obs.span("decision", test=test.id):
                for report, outcome in zip(reports, outcomes):
                    report.execution_paths[test.id] = "batched"
                    report.results[test.id] = outcome
        elif pool_allowed and test.expensive:
            pooled.append(test)
        else:
            run_inline(test, kwargs)

    if pooled:
        _TESTS_TOTAL.inc(len(pooled) * len(reports), path="pooled")
        if arrays is not None:
            payloads = [("bits", arr.tobytes(), int(arr.size)) for arr in arrays]
        else:
            packed = batch.packed_only()
            if packed is not None:
                # Packed-only batch: ship each row's 64-bit words (1/8th the
                # bytes) and let the worker unpack its own row lazily.
                payloads = [
                    ("words", np.ascontiguousarray(packed.words[i]).tobytes(), batch.n)
                    for i in range(num_sequences)
                ]
            else:
                payloads = [("bits", row.tobytes(), batch.n) for row in batch.matrix]
        pooled_ids = ",".join(test.id for test in pooled)
        with obs.span("dispatch", test=pooled_ids, path="pooled"):
            with ProcessPoolExecutor(max_workers=processes) as pool:
                futures = {}
                for test in pooled:
                    kwargs = params.get(test.id, {})
                    for index, (kind, raw, length) in enumerate(payloads):
                        future = pool.submit(
                            _pool_worker, (test.id, kind, raw, length, kwargs)
                        )
                        futures[future] = (index, test.id)
                        reports[index].execution_paths[test.id] = "pooled"
                for future in as_completed(futures):
                    index, test_id = futures[future]
                    status, outcome = future.result()
                    if status == "ok":
                        reports[index].results[test_id] = outcome
                    elif skip_errors:
                        reports[index].errors[test_id] = _describe_error(outcome)
                    else:
                        raise outcome

    return reports
