"""Unified batch test engine with shared-statistic contexts.

The engine is the software embodiment of the paper's resource-sharing idea:
the hardware testing block derives common sub-statistics (bit counts, block
sums, pattern counters) once and shares them across the on-the-fly tests.
Here a :class:`SequenceContext` memoizes those derived statistics for one
sequence, a :class:`BatchContext` computes them with vectorised 2-D passes
for a whole batch, the :class:`TestRegistry` puts the NIST, FIPS and
hardware-model tests behind one ``run(context) -> TestResult`` interface,
and :func:`run_batch` executes any test selection over many sequences —
vectorising the cheap tests on the shared statistics and the five
heavyweight ones through the batch-native kernels of
:mod:`repro.engine.heavy`, so the full suite runs pool-free on the packed
backend (the process pool survives as an explicit ``processes > 1``
fallback for paths without a batch kernel).

Quickstart::

    from repro.engine import run_batch
    from repro.trng import IdealSource

    sequences = [IdealSource(seed=i).generate(4096).bits for i in range(256)]
    reports = run_batch(sequences, tests=[1, 2, 3, 11, 12, 13])
    print(sum(report.passed() for report in reports), "of", len(reports))
"""

from repro.engine.batch import EngineReport, run_batch
from repro.engine.heavy import BatchFallback
from repro.engine.context import BACKENDS, DEFAULT_BACKEND, BatchContext, SequenceContext
from repro.engine.packed import PackedMatrix, pack_matrix, unpack_matrix
from repro.engine.registry import (
    DEFAULT_REGISTRY,
    NIST_NUMBER_TO_ID,
    RegisteredTest,
    StatisticalTest,
    TestRegistry,
    build_default_registry,
)
from repro.engine.streaming import StreamingBatchContext, StreamingContext

__all__ = [
    "BACKENDS",
    "BatchContext",
    "BatchFallback",
    "DEFAULT_BACKEND",
    "DEFAULT_REGISTRY",
    "EngineReport",
    "NIST_NUMBER_TO_ID",
    "PackedMatrix",
    "RegisteredTest",
    "SequenceContext",
    "StatisticalTest",
    "StreamingBatchContext",
    "StreamingContext",
    "TestRegistry",
    "build_default_registry",
    "pack_matrix",
    "run_batch",
    "unpack_matrix",
]
