"""Batched kernels for the five heavyweight NIST tests (pool-free path).

After the cheap tests went batch-native on shared statistics and the packed
backend, the only per-sequence Python left on the engine's hot path was the
five expensive tests — rank, DFT, universal, linear complexity and random
excursions(+variant) — historically fanned out over a process pool.  This
module computes each of them across a whole
:class:`~repro.engine.context.BatchContext` at once, working directly on the
packed bit-planes of :mod:`repro.engine.packed` wherever the algorithm
allows:

* **rank** — the 32x32 matrices are read straight off the packed words as
  little-endian ``uint32`` chunks (one chunk per matrix row; the within-row
  bit reversal is a column permutation, which GF(2) rank ignores) and
  eliminated with a vectorised XOR basis over every matrix of every
  sequence simultaneously.
* **DFT** — one batched FFT over ``(rows, n)`` chunks; numpy's pocketfft
  evaluates each row exactly as the per-sequence call does, so the peak
  counts are bit-identical.
* **universal** — the per-block table updates collapse into a previous-
  occurrence scan: one stable argsort over (row, block value) keys yields
  every gap distance without a Python-loop table.
* **linear complexity** — a bit-sliced Berlekamp–Massey advances 64 blocks
  per word operation: the connection/correction polynomials of all blocks
  live as ``(M+1, words)`` bit-plane slabs and every step is a handful of
  whole-slab XOR/AND ops.
* **random excursions (+variant)** — the per-row cycle/visit histograms come
  from ``cumsum`` + ``bincount``; the batch's cusum walk-extreme kernels
  (:meth:`BatchContext.walk_extremes`) bound which of the eight states were
  ever visited, so never-entered states skip their table column entirely.

Every kernel ends in the *same* shared decision helper as its scalar
reference (``rank_decision``, ``dft_decision``, ...), fed the same integer
statistics — which is what makes the P-values bit-identical, as
``tests/test_heavy_batch_parity.py`` and ``tests/test_engine_parity.py``
assert.  A kernel that cannot serve the requested parameters raises
:class:`BatchFallback` and the executor reruns that test per sequence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.engine import packed as _packed
from repro.nist.common import TestResult
from repro.nist.dft import dft_decision, dft_threshold
from repro.nist.linear_complexity import linear_complexity_decision
from repro.nist.random_excursions import EXCURSION_STATES, excursions_decision
from repro.nist.random_excursions_variant import VARIANT_STATES, variant_decision
from repro.nist.rank import rank_decision
from repro.nist.universal import UNIVERSAL_CONSTANTS, recommended_l, universal_decision

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.engine.context import BatchContext

__all__ = [
    "BatchFallback",
    "batch_rank",
    "batch_dft",
    "batch_universal",
    "batch_linear_complexity",
    "batch_random_excursions",
    "batch_random_excursions_variant",
]


class BatchFallback(Exception):
    """A batch kernel cannot serve the requested parameters.

    Raised instead of computing something slightly different (e.g. rank on
    non-32x32 matrices, which the packed word layout cannot slice): the
    executor catches it and reruns that one test through the per-sequence
    scalar path, preserving exact reference behaviour for every geometry.
    """


_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def _row_windows(batch: "BatchContext", max_rows: int):
    """Yield ``(start, uint8 block)`` row windows of the batch matrix.

    Packed-only batches unpack one window at a time, so chunked kernels
    never force the full ``rows x n`` uint8 matrix into memory.
    """
    packed = batch.packed_only()
    for start in range(0, batch.num_sequences, max_rows):
        stop = min(start + max_rows, batch.num_sequences)
        if packed is not None:
            yield start, _packed.unpack_rows(packed, start, stop)
        else:
            yield start, batch.matrix[start:stop]


# ---------------------------------------------------------------------------
# Test 5: binary matrix rank
# ---------------------------------------------------------------------------

def _gf2_rank32(mats: np.ndarray) -> np.ndarray:
    """GF(2) rank of many 32x32 matrices, each given as 32 uint32 rows.

    Vectorised XOR elimination: a per-matrix basis keyed by leading-bit
    position absorbs one row of every matrix per outer step, so the whole
    population is reduced in 32x32 word-wide passes with no per-matrix
    Python.
    """
    count = mats.shape[0]
    basis = np.zeros((32, count), dtype=np.uint32)
    rank = np.zeros(count, dtype=np.int64)
    for r in range(32):
        v = mats[:, r].copy()
        for p in range(31, -1, -1):
            has = ((v >> np.uint32(p)) & np.uint32(1)).astype(bool)
            if not has.any():
                continue
            slot = basis[p]
            filled = slot != 0
            np.bitwise_xor(v, slot, out=v, where=has & filled)
            insert = has & ~filled
            if insert.any():
                basis[p] = np.where(insert, v, slot)
                rank += insert
                v[insert] = 0
    return rank


def batch_rank(
    batch: "BatchContext", matrix_rows: int = 32, matrix_cols: int = 32
) -> List[TestResult]:
    """Batched binary matrix rank test over the packed words.

    Only the standard 32x32 geometry has a packed kernel (each matrix row is
    exactly one little-endian ``uint32`` chunk of the bit-plane; the bit
    reversal within a chunk permutes columns, leaving the rank unchanged).
    Other geometries raise :class:`BatchFallback`.
    """
    if (matrix_rows, matrix_cols) != (32, 32):
        raise BatchFallback(
            f"packed rank kernel requires 32x32 matrices, got {matrix_rows}x{matrix_cols}"
        )
    n = batch.n
    bits_per_matrix = matrix_rows * matrix_cols
    num_matrices = n // bits_per_matrix
    if num_matrices == 0:
        raise ValueError(
            f"sequence too short: need at least {bits_per_matrix} bits, got {n}"
        )
    words = batch.packed().words
    chunks = np.ascontiguousarray(words).view("<u4")[:, : num_matrices * 32]
    ranks = _gf2_rank32(chunks.reshape(-1, 32).astype(np.uint32))
    ranks = ranks.reshape(batch.num_sequences, num_matrices)
    full = (ranks == 32).sum(axis=1)
    minus1 = (ranks == 31).sum(axis=1)
    results = []
    for row in range(batch.num_sequences):
        counts = {
            "full": int(full[row]),
            "full_minus_1": int(minus1[row]),
            "rest": int(num_matrices - full[row] - minus1[row]),
        }
        results.append(rank_decision(counts, num_matrices, matrix_rows, matrix_cols, n))
    return results


# ---------------------------------------------------------------------------
# Test 6: discrete Fourier transform
# ---------------------------------------------------------------------------

#: Complex-buffer budget of the chunked batch FFT (bytes).
_DFT_CHUNK_BYTES = 1 << 27


def batch_dft(batch: "BatchContext") -> List[TestResult]:
    """Batched spectral test: one FFT call per row chunk instead of per row."""
    n = batch.n
    if n < 2:
        raise ValueError("DFT test requires at least 2 bits")
    threshold = dft_threshold(n)
    half = n // 2
    rows_per_chunk = max(1, _DFT_CHUNK_BYTES // (16 * n))
    below = np.empty(batch.num_sequences, dtype=np.int64)
    for start, block in _row_windows(batch, rows_per_chunk):
        x = 2 * block.astype(np.float64) - 1
        spectrum = np.abs(np.fft.fft(x, axis=1)[:, :half])
        below[start : start + block.shape[0]] = np.count_nonzero(
            spectrum < threshold, axis=1
        )
    return [dft_decision(float(n1), n) for n1 in below]


# ---------------------------------------------------------------------------
# Test 9: Maurer's universal statistical test
# ---------------------------------------------------------------------------

#: Row-chunk budget of the universal kernel (block-value int32 entries).
_UNIVERSAL_CHUNK_VALUES = 1 << 24


def batch_universal(
    batch: "BatchContext",
    block_length: Optional[int] = None,
    init_blocks: Optional[int] = None,
) -> List[TestResult]:
    """Batched universal test via a previous-occurrence scan.

    The scalar reference walks a ``2^L``-entry table block by block; here the
    distance of every test block to the previous occurrence of its value
    falls out of one stable argsort over ``(row, value)`` keys — adjacent
    equal keys in sort order are consecutive occurrences in stream order.
    """
    n = batch.n
    L = block_length if block_length is not None else recommended_l(n)
    if L not in UNIVERSAL_CONSTANTS:
        raise ValueError(f"block_length must be one of {sorted(UNIVERSAL_CONSTANTS)}")
    Q = init_blocks if init_blocks is not None else 10 * (1 << L)
    total_blocks = n // L
    K = total_blocks - Q
    if K <= 0:
        raise ValueError(
            f"sequence too short: {total_blocks} blocks available but Q={Q} needed for initialisation"
        )
    weights = (1 << np.arange(L - 1, -1, -1)).astype(np.int32)
    rows_per_chunk = max(1, _UNIVERSAL_CHUNK_VALUES // max(n, 1))
    results: List[TestResult] = []
    for _, block in _row_windows(batch, rows_per_chunk):
        rows = block.shape[0]
        values = (
            block[:, : total_blocks * L]
            .reshape(rows, total_blocks, L)
            .astype(np.int32)
            @ weights
        )
        # Previous occurrence of each block's value within its own row: keys
        # put every (row, value) group together, a stable sort keeps stream
        # order inside the group.
        keys = (np.arange(rows, dtype=np.int64)[:, np.newaxis] << L) | values
        flat_keys = keys.ravel()
        order = np.argsort(flat_keys, kind="stable")
        same = flat_keys[order[1:]] == flat_keys[order[:-1]]
        prev = np.full(rows * total_blocks, -1, dtype=np.int64)
        prev[order[1:][same]] = order[:-1][same]
        block_index = np.arange(rows * total_blocks, dtype=np.int64) % total_blocks
        prev_index = np.where(prev >= 0, prev % total_blocks, -1)
        distances = (block_index - prev_index).reshape(rows, total_blocks)[:, Q:]
        for row in range(rows):
            results.append(
                universal_decision(np.ascontiguousarray(distances[row]), L, Q, K, n)
            )
    return results


# ---------------------------------------------------------------------------
# Test 10: linear complexity (bit-sliced Berlekamp–Massey)
# ---------------------------------------------------------------------------

#: Lane budget per bit-sliced BM slab (one lane = one M-bit block).
_LC_CHUNK_LANES = 1 << 17


def _pack_lane_mask(flags: np.ndarray, num_words: int) -> np.ndarray:
    """Pack a per-lane bool array into the (words,) uint64 lane-mask layout."""
    as_bytes = np.packbits(flags, bitorder="little")
    padded = np.zeros(num_words * 8, dtype=np.uint8)
    padded[: as_bytes.size] = as_bytes
    return padded.view("<u8")


def _bitsliced_berlekamp_massey(blocks: np.ndarray) -> np.ndarray:
    """Linear complexity of many M-bit blocks, 64 blocks per word op.

    ``blocks`` is ``(lanes, M)`` uint8; lane ``b`` rides bit ``b % 64`` of
    word ``b // 64``.  The connection polynomial C and the correction term
    T = x^(i-m)·B of *all* lanes are stored as ``(M+1, words)`` bit-plane
    slabs (plane ``j`` holds every lane's coefficient of x^j), so one BM
    step is a few whole-slab XOR/AND operations:

    * discrepancy  ``d = S[i] ^ XOR_j C[j] & S[i-j]`` (j bounded by the
      population's largest L — lanes with smaller L have zero high planes,
      so the extra terms vanish),
    * ``C ^= T & d`` on the lanes with a discrepancy,
    * ``T <- x·C_old`` on lanes that reset (2L <= i), ``x·T`` elsewhere —
      both at once as ``T'[j+1] = T[j] ^ (C_new[j] & reset)``, using
      ``C_old = C_new ^ T`` on reset lanes.

    Planes above degree M never influence planes <= M, so the slab height
    M+1 is exact, and zero-padding lanes beyond the population is harmless
    (their discrepancy is always zero).
    """
    lanes, m_bits = blocks.shape
    num_words = (lanes + 63) // 64
    packed_s = np.packbits(blocks.T, axis=1, bitorder="little")
    if packed_s.shape[1] < num_words * 8:
        padded = np.zeros((m_bits, num_words * 8), dtype=np.uint8)
        padded[:, : packed_s.shape[1]] = packed_s
        packed_s = padded
    # packbits of the transposed lanes may come back F-ordered; the word
    # view needs a contiguous last axis.
    s_planes = np.ascontiguousarray(packed_s).view("<u8")
    c_planes = np.zeros((m_bits + 1, num_words), dtype=np.uint64)
    t_planes = np.zeros((m_bits + 1, num_words), dtype=np.uint64)
    c_planes[0] = _ALL_ONES  # every lane starts at C = 1
    t_planes[1] = _ALL_ONES  # and T = x·B with B = 1, m = -1
    complexity = np.zeros(lanes, dtype=np.int64)
    l_max = 0
    for i in range(m_bits):
        k = min(i, l_max)
        if k:
            d = s_planes[i] ^ np.bitwise_xor.reduce(
                c_planes[1 : k + 1] & s_planes[i - k : i][::-1], axis=0
            )
        else:
            d = s_planes[i].copy()
        shift_upper = min(i + 2, m_bits)
        if not d.any():
            t_planes[1 : shift_upper + 1] = t_planes[0:shift_upper].copy()
            t_planes[0] = 0
            continue
        d_bits = np.unpackbits(
            d.view(np.uint8), count=lanes, bitorder="little"
        ).astype(bool)
        reset = d_bits & (2 * complexity <= i)
        reset_mask = _pack_lane_mask(reset, num_words)
        cap = min(i + 1, m_bits)
        np.bitwise_xor(
            c_planes[1 : cap + 1],
            t_planes[1 : cap + 1] & d,
            out=c_planes[1 : cap + 1],
        )
        t_planes[1 : shift_upper + 1] = t_planes[0:shift_upper] ^ (
            c_planes[0:shift_upper] & reset_mask
        )
        t_planes[0] = 0
        if reset.any():
            np.copyto(complexity, i + 1 - complexity, where=reset)
            l_max = int(complexity.max())
    return complexity


def batch_linear_complexity(
    batch: "BatchContext", block_length: int = 500
) -> List[TestResult]:
    """Batched linear complexity test via bit-sliced Berlekamp–Massey."""
    n = batch.n
    if block_length < 4:
        raise ValueError("block_length must be at least 4")
    num_blocks = n // block_length
    if num_blocks == 0:
        raise ValueError("sequence shorter than a single block")
    rows_per_chunk = max(1, _LC_CHUNK_LANES // num_blocks)
    results: List[TestResult] = []
    for _, block in _row_windows(batch, rows_per_chunk):
        rows = block.shape[0]
        lanes = block[:, : num_blocks * block_length].reshape(-1, block_length)
        complexities = _bitsliced_berlekamp_massey(lanes).reshape(rows, num_blocks)
        for row in range(rows):
            results.append(
                linear_complexity_decision(
                    complexities[row], block_length, num_blocks, n
                )
            )
    return results


# ---------------------------------------------------------------------------
# Tests 14/15: random excursions (+variant)
# ---------------------------------------------------------------------------

def batch_random_excursions(batch: "BatchContext") -> List[TestResult]:
    """Batched random excursions test.

    The batch's cusum walk-extreme kernels bound each row's walk, so a state
    the walk never reaches contributes its all-zero-visit histogram without
    touching the visit table; visited states are histogrammed with one
    ``bincount`` over (cycle, state) keys per row.
    """
    n = batch.n
    if n == 0:
        raise ValueError("random excursions test requires a non-empty sequence")
    s_max, s_min, _ = batch.walk_extremes()
    results: List[TestResult] = []
    for row in range(batch.num_sequences):
        bits = batch.row_bits(row)
        walk = np.cumsum(2 * bits.astype(np.int32) - 1, dtype=np.int32)
        if walk[-1] != 0:
            walk = np.append(walk, np.int32(0))
        zeros = walk == 0
        j = int(np.count_nonzero(zeros))  # >= 1 for n >= 1: the walk ends at 0
        cycle_index = np.cumsum(zeros) - zeros  # zeros strictly before each step
        in_band = (walk >= -4) & (walk <= 4) & ~zeros
        states = walk[in_band]
        columns = states + 4 - (states > 0)  # -4..-1 -> 0..3, 1..4 -> 4..7
        table = np.bincount(
            cycle_index[in_band] * 8 + columns, minlength=j * 8
        ).reshape(j, 8)
        lo, hi = int(s_min[row]), int(s_max[row])
        histograms: Dict[int, np.ndarray] = {}
        for column, x in enumerate(EXCURSION_STATES):
            if x < lo or x > hi:
                histogram = np.zeros(6, dtype=np.int64)
                histogram[0] = j  # never visited: all j cycles sit at 0 visits
            else:
                histogram = np.bincount(
                    np.minimum(table[:, column], 5), minlength=6
                ).astype(np.int64)
            histograms[x] = histogram
        results.append(excursions_decision(histograms, j, n))
    return results


def batch_random_excursions_variant(batch: "BatchContext") -> List[TestResult]:
    """Batched random excursions variant test: one bincount per row."""
    n = batch.n
    if n == 0:
        raise ValueError("random excursions variant test requires a non-empty sequence")
    results: List[TestResult] = []
    for row in range(batch.num_sequences):
        bits = batch.row_bits(row)
        walk = np.cumsum(2 * bits.astype(np.int32) - 1, dtype=np.int32)
        j = int(np.count_nonzero(walk == 0)) + 1  # + the appended terminal zero
        in_band = (walk >= -9) & (walk <= 9) & (walk != 0)
        binned = np.bincount(walk[in_band] + 9, minlength=19)
        counts = {x: int(binned[x + 9]) for x in VARIANT_STATES}
        results.append(variant_decision(counts, j, n))
    return results
