"""Command-line interface of the on-the-fly testing platform.

Installed as ``repro-trng-test`` (see ``pyproject.toml``); also runnable as
``python -m repro.cli``.  Sub-commands:

``designs``
    List the eight published design points with their estimated cost.
``evaluate``
    Evaluate a captured bit stream (raw byte file) — or a built-in simulated
    source — on one design point, printing the per-test verdicts.
``monitor``
    Continuously monitor a simulated source for a number of sequences and
    report the health-state trajectory (``--batch-size`` evaluates whole
    batches through the engine instead of one sequence at a time).
``suite``
    Run the full reference NIST SP 800-22 suite (all 15 tests) on a captured
    byte file through the batch engine.  The heavyweight tests run pool-free
    on batch-native kernels; ``--processes`` keeps a process pool available
    as an explicit opt-in fallback.
``batch``
    Evaluate a batch of sequences from a simulated source through the
    unified batch engine and report per-test pass rates and throughput.
``campaign``
    Sweep the Section II-B threat catalogue (failures, bias/correlation
    sweeps, staged injection attacks, aging) across design points through
    the batch engine; report detection probability, detection latency and
    per-test attribution, with the healthy-control false-alarm rate per
    design and optional JSON/CSV export.
``fleet``
    Many-device fleet monitoring.  ``fleet run`` instantiates a fleet from a
    scenario mix and advances it in multiplexed engine rounds (one fleet-wide
    batch per round); ``fleet serve`` additionally exposes the fleet over the
    stdlib HTTP/JSON service (ingest, per-device health, fleet summary).
``lint``
    The project-native static-analysis pass (:mod:`repro.analysis`):
    determinism, packed-kernel and lock-discipline invariants over
    ``src/``, ``benchmarks/`` and ``examples/``, with inline suppressions
    and the committed finding baseline.  Same engine as
    ``python -m repro.analysis``.
``metrics``
    Run any other sub-command as a workload and dump the process-wide
    :mod:`repro.obs` metrics registry afterwards (text exposition format,
    or ``--json`` for the structured snapshot).

The engine-driven sub-commands (``batch``, ``monitor``, ``fleet``) also
take ``--trace <path>``: the recorded :mod:`repro.obs` span trees (pack /
dispatch / decision, fleet round stages, ...) are written to the path as
JSON when the command finishes.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from typing import List, Optional

import repro.obs as obs
from repro.campaign import (
    CampaignConfig,
    DEFAULT_CAMPAIGN_DESIGNS,
    DEFAULT_CATALOG,
    SCENARIO_CATEGORIES,
    run_campaign,
)
from repro.core.configs import get_design, list_designs
from repro.core.monitor import HealthState, OnTheFlyMonitor
from repro.core.platform import OnTheFlyPlatform
from repro.engine.context import BACKENDS, DEFAULT_BACKEND
from repro.eval.asic import estimate_asic
from repro.eval.fpga import estimate_fpga
from repro.hwtests.block import UnifiedTestingBlock
from repro.nist.suite import NistSuite
from repro.trng.biased import BiasedSource
from repro.trng.capture import ReplaySource
from repro.trng.correlated import CorrelatedSource
from repro.trng.failures import AlternatingSource, StuckAtSource
from repro.trng.ideal import IdealSource
from repro.trng.oscillator import RingOscillatorTRNG
from repro.trng.source import EntropySource

__all__ = ["main", "build_parser"]

#: Built-in simulated sources selectable from the command line.  Any
#: registered campaign scenario is additionally reachable as
#: ``scenario:<label>`` — one source model, CLI and campaigns alike.
_SIMULATED_SOURCES = ("ideal", "biased", "correlated", "oscillator", "stuck", "alternating")

#: Which knobs each built-in source honours (surfaced in ``--help`` so a
#: ``--seed``/``--parameter`` that silently does nothing is documented, not a
#: surprise): deterministic sources (stuck, alternating) ignore ``--seed``;
#: only biased / correlated / stuck read ``--parameter``.
_SOURCE_HELP = (
    "simulated source: ideal | oscillator (seeded, no parameter), "
    "biased (parameter = P(1), default 0.6) | correlated (parameter = "
    "P(repeat), default 0.7), stuck (parameter = stuck bit value, 0 or 1) | "
    "alternating (deterministic: --seed and --parameter ignored), or "
    "scenario:<label> for any campaign-catalogue scenario (seeded, "
    "--parameter ignored; labels: %s)"
) % ", ".join(DEFAULT_CATALOG.labels())


def _make_source(name: str, seed: int, parameter: float, n: int) -> EntropySource:
    """Instantiate a built-in simulated source or a catalogue scenario.

    ``scenario:<label>`` defers to the campaign
    :class:`~repro.campaign.scenarios.ScenarioCatalog` builders, scaled by
    the design's sequence length ``n`` (staged attacks and aging
    trajectories unfold at the same relative point regardless of n).
    """
    if name.startswith("scenario:"):
        label = name[len("scenario:"):]
        # ScenarioCatalog.get already raises a ValueError listing the labels.
        return DEFAULT_CATALOG.get(label).build(seed, n)
    if name == "ideal":
        return IdealSource(seed=seed)
    if name == "biased":
        return BiasedSource(parameter if parameter > 0 else 0.6, seed=seed)
    if name == "correlated":
        return CorrelatedSource(parameter if parameter > 0 else 0.7, seed=seed)
    if name == "oscillator":
        return RingOscillatorTRNG(seed=seed)
    if name == "stuck":
        # The stuck value is exactly the parameter; anything but 0/1 used to
        # be silently coerced to 0, turning a typo into the wrong experiment.
        if parameter not in (0, 1):
            raise ValueError(
                f"stuck source needs --parameter 0 or 1 (the stuck bit value), "
                f"got {parameter}"
            )
        return StuckAtSource(int(parameter))
    if name == "alternating":
        return AlternatingSource()
    raise ValueError(
        f"unknown simulated source {name!r}; available: "
        f"{', '.join(_SIMULATED_SOURCES)} or scenario:<label>"
    )


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    """The shared ``--backend`` flag of the engine-driven sub-commands."""
    parser.add_argument(
        "--backend", choices=BACKENDS, default=DEFAULT_BACKEND,
        help="compute backend for the engine's shared statistics: 'packed' "
             "runs them on 64-bits-per-word popcount kernels, 'uint8' on "
             "the byte-per-bit reference paths; P-values and verdicts are "
             "bit-identical either way (default: %(default)s)",
    )


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    """The shared ``--trace`` flag of the instrumented sub-commands."""
    parser.add_argument(
        "--trace", dest="trace_path", default=None, metavar="PATH",
        help="write the recorded repro.obs span trees (nested timed stages "
             "of this run) to PATH as JSON when the command finishes",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argparse command-line parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-trng-test",
        description="Embedded HW/SW platform for on-the-fly testing of TRNGs (DATE 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("designs", help="list the published design points and their cost")

    evaluate = sub.add_parser("evaluate", help="evaluate one sequence on a design point")
    evaluate.add_argument("--design", default="n65536_high", help="design point name")
    evaluate.add_argument("--alpha", type=float, default=0.01, help="level of significance")
    evaluate.add_argument("--capture", help="raw byte file with the captured TRNG output")
    evaluate.add_argument("--bits", type=int, default=None,
                          help="exact bit count of the capture (as returned by "
                               "CaptureSource.save); drops the zero-pad bits of the "
                               "last byte")
    evaluate.add_argument("--source", default="ideal",
                          help=_SOURCE_HELP + " (ignored when --capture is given)")
    evaluate.add_argument("--seed", type=int, default=0,
                          help="seed of the simulated source (deterministic sources "
                               "stuck/alternating ignore it)")
    evaluate.add_argument("--parameter", type=float, default=0.0,
                          help="source parameter: bias P(1) for biased, repeat "
                               "probability for correlated, stuck bit value (0/1) "
                               "for stuck; other sources ignore it")

    monitor = sub.add_parser("monitor", help="continuously monitor a simulated source")
    monitor.add_argument("--design", default="n128_light")
    monitor.add_argument("--alpha", type=float, default=0.01)
    monitor.add_argument("--source", default="ideal", help=_SOURCE_HELP)
    monitor.add_argument("--seed", type=int, default=0,
                         help="seed of the simulated source (deterministic sources "
                              "stuck/alternating ignore it)")
    monitor.add_argument("--parameter", type=float, default=0.0,
                         help="source parameter: bias P(1) for biased, repeat "
                              "probability for correlated, stuck bit value (0/1) "
                              "for stuck; other sources ignore it")
    monitor.add_argument("--sequences", type=int, default=8)
    monitor.add_argument("--batch-size", type=int, default=None,
                         help="evaluate sequences in engine batches of this size")
    monitor.add_argument("--max-history", type=int, default=None,
                         help="bound the in-memory event history (running totals stay exact)")
    monitor.add_argument("--rtl-fidelity", action="store_true",
                         help="drive the cycle-accurate bit-serial hardware model "
                              "bit by bit instead of the vectorized block path "
                              "(slow; for RTL-fidelity runs)")
    monitor.add_argument("--streaming", action="store_true",
                         help="feed windows from a streaming packed ring with O(1) "
                              "window rolls instead of re-packing each sequence; "
                              "--sequences counts evaluated windows")
    monitor.add_argument("--stride", type=int, default=None,
                         help="streaming only: new bits between window evaluations "
                              "(default n; < n slides overlapping windows)")
    monitor.add_argument("--history-bits", type=int, default=None,
                         help="streaming only: ring capacity in bits (default n; "
                              "bounds per-stream memory regardless of stream length)")
    _add_trace_argument(monitor)

    suite = sub.add_parser("suite", help="run the full reference NIST suite on a capture")
    suite.add_argument("capture", help="raw byte file with the captured TRNG output")
    suite.add_argument("--bits", type=int, default=None,
                       help="exact bit count of the capture (as returned by "
                            "CaptureSource.save); drops the zero-pad bits of the "
                            "last byte")
    suite.add_argument("--alpha", type=float, default=0.01)
    suite.add_argument("--processes", type=int, default=None,
                       help="fallback knob: the heavy tests run pool-free on "
                            "batch-native kernels; set > 1 only to fan tests "
                            "without a batch kernel out over worker processes")

    batch = sub.add_parser("batch", help="evaluate a batch of sequences through the engine")
    batch.add_argument("--source", default="ideal", help=_SOURCE_HELP)
    batch.add_argument("--seed", type=int, default=0)
    batch.add_argument("--parameter", type=float, default=0.0)
    batch.add_argument("--sequences", type=int, default=64, help="number of sequences in the batch")
    batch.add_argument("--length", type=int, default=4096, help="bits per sequence")
    batch.add_argument("--alpha", type=float, default=0.01)
    batch.add_argument("--processes", type=int, default=None,
                       help="fallback knob: the heavy tests run pool-free on "
                            "batch-native kernels; set > 1 only to fan tests "
                            "without a batch kernel out over worker processes")
    batch.add_argument("--tests", default="hw",
                       help="comma-separated NIST test numbers, or 'hw' for the "
                            "HW-suitable subset, or 'all' for all 15")
    _add_backend_argument(batch)
    _add_trace_argument(batch)

    campaign = sub.add_parser(
        "campaign",
        help="sweep the threat catalogue across design points (detection evaluation)",
    )
    campaign.add_argument("--designs", default=",".join(DEFAULT_CAMPAIGN_DESIGNS),
                          help="comma-separated design point names")
    campaign.add_argument("--scenarios", default="all",
                          help="comma-separated catalogue labels, or 'all', or a "
                               "category (healthy/failure/parametric/attack/aging)")
    campaign.add_argument("--trials", type=int, default=3,
                          help="independent monitoring trials per cell")
    campaign.add_argument("--sequences", type=int, default=8,
                          help="sequences monitored per trial (= engine batch size)")
    campaign.add_argument("--alpha", type=float, default=0.01)
    campaign.add_argument("--suspect-after", type=int, default=1)
    campaign.add_argument("--fail-after", type=int, default=2)
    campaign.add_argument("--seed", type=int, default=0,
                          help="base seed; the whole campaign is reproducible from it")
    campaign.add_argument("--processes", type=int, default=None,
                          help="fallback knob: each cell's sequences already run "
                               "through the pool-free batched engine path; set "
                               "> 1 only to additionally fan whole cells out "
                               "over worker processes")
    campaign.add_argument("--json", dest="json_path", default=None,
                          help="write the full campaign report as JSON to this path")
    campaign.add_argument("--csv", dest="csv_path", default=None,
                          help="write the summary table as CSV to this path")
    _add_backend_argument(campaign)

    fleet = sub.add_parser(
        "fleet",
        help="multiplexed many-device fleet monitoring (run rounds or serve HTTP)",
    )
    fleet.add_argument("mode", choices=("run", "serve"),
                       help="run: advance the fleet for --rounds and report; "
                            "serve: also expose the fleet over the HTTP/JSON service")
    fleet.add_argument("--devices", type=int, default=256,
                       help="number of simulated devices in the fleet")
    fleet.add_argument("--rounds", type=int, default=8,
                       help="fleet rounds to run (one sequence per device per round)")
    fleet.add_argument("--design", default="n128_light", help="shared design point")
    fleet.add_argument("--alpha", type=float, default=0.01)
    fleet.add_argument("--mix", default=None,
                       help="scenario mix as <label>:<weight>,... over the campaign "
                            "catalogue (default: 95%% healthy-ideal, 5%% spread over "
                            "wire-cut, biased-0.60, freq-injection, aging-drift)")
    fleet.add_argument("--suspect-after", type=int, default=1)
    fleet.add_argument("--fail-after", type=int, default=2)
    fleet.add_argument("--seed", type=int, default=0,
                       help="fleet seed; device placement and streams derive from it")
    fleet.add_argument("--streaming", action="store_true",
                       help="keep per-device packed rings across rounds (O(1) window "
                            "rolls, ingest accepts arbitrary chunk sizes) instead of "
                            "rebuilding each round's matrix; verdicts are identical")
    fleet.add_argument("--processes", type=int, default=None,
                       help="fallback knob: rounds already run pool-free on the "
                            "batched engine path; set > 1 only to shard each "
                            "round's fleet matrix over worker processes (fleets "
                            "under 256 devices stay inline — the pool's "
                            "serialisation overhead would dominate)")
    fleet.add_argument("--json", dest="json_path", default=None,
                       help="write the full fleet report as JSON to this path")
    fleet.add_argument("--csv", dest="csv_path", default=None,
                       help="write the per-scenario summary as CSV to this path")
    fleet.add_argument("--host", default="127.0.0.1", help="serve: bind address")
    fleet.add_argument("--port", type=int, default=8080,
                       help="serve: TCP port (0 picks a free one)")
    fleet.add_argument("--snapshot-dir", default=None,
                       help="serve: durability spool directory; enables atomic "
                            "fleet snapshots plus the write-ahead ingest journal")
    fleet.add_argument("--snapshot-interval", type=float, default=None,
                       help="serve: seconds between background snapshots "
                            "(requires --snapshot-dir; default: only on "
                            "startup and shutdown)")
    fleet.add_argument("--restore", action="store_true",
                       help="serve: restore the fleet from --snapshot-dir "
                            "(snapshot + journal replay) instead of building "
                            "a fresh one; falls back to fresh when the spool "
                            "holds no snapshot yet")
    fleet.add_argument("--wal-fsync", action="store_true",
                       help="serve: fsync every journal record (survives "
                            "machine crashes, not just process crashes; "
                            "costs throughput)")
    fleet.add_argument("--max-inflight", type=int, default=None,
                       help="serve: max concurrent ingest evaluations before "
                            "load-shedding with 429 + Retry-After")
    fleet.add_argument("--quarantine-after", type=int, default=None,
                       help="serve: quarantine a device (403) after this many "
                            "consecutive malformed ingests")
    fleet.add_argument("--max-body-bytes", type=int, default=None,
                       help="serve: reject request bodies larger than this "
                            "with 413 (default: 32 MiB)")
    fleet.add_argument("--quiet", action="store_true",
                       help="serve: log only warnings and errors (drop the "
                            "per-request INFO lines of the service logger)")
    _add_backend_argument(fleet)
    _add_trace_argument(fleet)

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection harness: boot the fleet service, kill "
             "it mid-ingest, restore from snapshot + journal, and verify the "
             "recovered fleet matches an uninterrupted control run",
    )
    chaos.add_argument("--devices", type=int, default=4,
                       help="externally-fed devices driven over HTTP")
    chaos.add_argument("--chunks", type=int, default=6,
                       help="sequenced chunks ingested per device")
    chaos.add_argument("--seed", type=int, default=0,
                       help="seed for device bits, fault schedule and kill point")
    chaos.add_argument("--design", default="n128_light", help="shared design point")
    chaos.add_argument("--kill-after", type=int, default=None,
                       help="SIGKILL the service after this many acknowledged "
                            "ingests (default: a seeded point mid-run)")
    chaos.add_argument("--drop", type=float, default=0.1,
                       help="per-chunk probability of dropping the send once "
                            "before retrying it")
    chaos.add_argument("--duplicate", type=float, default=0.1,
                       help="per-chunk probability of sending the chunk twice")
    chaos.add_argument("--reorder", type=float, default=0.1,
                       help="per-chunk probability of sending the next chunk "
                            "first (expects 409, then recovers the order)")
    chaos.add_argument("--corrupt", type=float, default=0.1,
                       help="per-chunk probability of sending a corrupt payload "
                            "first (expects 400, then the real chunk)")
    chaos.add_argument("--snapshot-interval", type=float, default=0.2,
                       help="background snapshot interval of the service under test")
    chaos.add_argument("--streaming", action="store_true",
                       help="exercise the streaming ingest path (varied chunk "
                            "sizes) instead of whole sequences")
    chaos.add_argument("--workdir", default=None,
                       help="spool/scratch directory (default: a fresh "
                            "temporary directory, removed on success)")
    chaos.add_argument("--report", default=None,
                       help="write the JSON recovery report to this path")
    chaos.add_argument("--quiet", action="store_true",
                       help="suppress the per-phase progress lines")
    _add_backend_argument(chaos)

    lint = sub.add_parser(
        "lint",
        help="run the project-native static-analysis pass (repro.analysis)",
    )
    # The analysis CLI owns its option surface; `lint` is a thin alias so
    # both entry points accept exactly the same flags.
    from repro.analysis.cli import configure_parser as _configure_lint_parser

    _configure_lint_parser(lint)

    metrics = sub.add_parser(
        "metrics",
        help="run another sub-command as a workload, then dump the "
             "repro.obs metrics registry it populated",
    )
    metrics.add_argument("--json", dest="json_output", action="store_true",
                         help="dump the structured JSON snapshot instead of "
                              "the Prometheus text exposition format")
    metrics.add_argument("workload", nargs=argparse.REMAINDER,
                         help="any repro.cli command line, e.g. "
                              "'batch --sequences 32 --length 4096'; omit to "
                              "dump the (empty) registry as-is")

    return parser


def _cmd_designs(out) -> int:
    print(f"{'design':<18}{'n':>9}{'tests':>7}{'slices':>8}{'FF':>7}{'LUT':>7}{'fmax':>7}{'GE':>8}", file=out)
    for design in list_designs():
        block = UnifiedTestingBlock(design.parameters, tests=design.tests)
        resources = block.resources()
        fpga = estimate_fpga(resources)
        asic = estimate_asic(resources)
        print(
            f"{design.name:<18}{design.n:>9}{len(design.tests):>7}{fpga.slices:>8}"
            f"{fpga.flip_flops:>7}{fpga.luts:>7}{fpga.max_frequency_mhz:>7.0f}"
            f"{asic.gate_equivalents:>8}",
            file=out,
        )
    return 0


def _cmd_evaluate(args, out) -> int:
    platform = OnTheFlyPlatform(args.design, alpha=args.alpha)
    if args.capture:
        try:
            source: EntropySource = ReplaySource.from_file(args.capture, bit_length=args.bits)
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 2
        if source.total_bits < platform.n:
            print(
                f"error: capture holds {source.total_bits} bits but design "
                f"{args.design} needs {platform.n}",
                file=out,
            )
            return 2
        bits = source.generate_block(platform.n)
        report = platform.evaluate_sequence(bits, accelerated=True)
        origin = args.capture
    else:
        try:
            simulated = _make_source(args.source, args.seed, args.parameter, platform.n)
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 2
        bits = simulated.generate_block(platform.n)
        report = platform.evaluate_sequence(bits, accelerated=True)
        origin = simulated.name
    print(f"design   : {args.design} (n = {platform.n}, alpha = {args.alpha})", file=out)
    print(f"source   : {origin}", file=out)
    print(f"verdict  : {'PASS' if report.passed else 'FAIL'}", file=out)
    for row in report.summary_rows():
        status = "ok  " if row["passed"] else "FAIL"
        print(f"  [{status}] test {row['test']:>2}: {row['name']}", file=out)
    if report.consistency_violations:
        print(f"read-out consistency violations: {report.consistency_violations}", file=out)
    return 0 if report.passed else 1


def _cmd_monitor(args, out) -> int:
    platform = OnTheFlyPlatform(args.design, alpha=args.alpha)
    monitor = OnTheFlyMonitor(
        platform, suspect_after=1, fail_after=2, max_history=args.max_history
    )
    try:
        source = _make_source(args.source, args.seed, args.parameter, platform.n)
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    if args.streaming and args.rtl_fidelity:
        print("error: --streaming evaluates windows from the packed ring; "
              "it cannot drive the bit-serial --rtl-fidelity model", file=out)
        return 2
    if not args.streaming and (args.stride is not None or args.history_bits is not None):
        print("error: --stride/--history-bits require --streaming", file=out)
        return 2
    if args.rtl_fidelity:
        path = "bit-serial RTL model (--rtl-fidelity)"
    elif args.streaming:
        path = "streaming packed-ring window roll (--streaming)"
    else:
        path = "vectorized block streaming (default)"
    print(f"hardware path: {path}", file=out)
    if args.streaming:
        try:
            events = monitor.monitor_stream(
                source,
                num_windows=args.sequences,
                stride=args.stride,
                history_bits=args.history_bits,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 2
    else:
        events = monitor.monitor(
            source,
            num_sequences=args.sequences,
            batch_size=args.batch_size,
            accelerated=not args.rtl_fidelity,
        )
    for event in events:
        verdict = "pass" if event.report.passed else f"fail {event.report.failing_tests}"
        print(
            f"sequence {event.sequence_index:>3}  {verdict:<26}  health: {event.state.value}",
            file=out,
        )
    print(f"final state: {monitor.state.value}  failure rate: {monitor.failure_rate():.2f}", file=out)
    # Exit code keyed off the final health state, not the failure rate: a
    # healthy source loses individual sequences at rate ~alpha, and a single
    # recovered blip must not make the whole monitoring run report failure.
    return 0 if monitor.state is HealthState.HEALTHY else 1


def _cmd_suite(args, out) -> int:
    try:
        source = ReplaySource.from_file(args.capture, bit_length=args.bits)
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    bits = source.generate(source.total_bits)
    report = NistSuite().run_batch([bits], processes=args.processes)[0]
    print(f"reference NIST SP 800-22 suite on {args.capture} ({source.total_bits} bits)", file=out)
    for row in report.summary_rows(args.alpha):
        if row.get("error"):
            print(f"  test {row['test']:>2}: {row['name']:<44} skipped ({row['error']})", file=out)
        else:
            status = "ok  " if row["passed"] else "FAIL"
            print(
                f"  [{status}] test {row['test']:>2}: {row['name']:<44} p = {row['p_value']:.4f}",
                file=out,
            )
    return 0 if report.passed(args.alpha) else 1


def _cmd_batch(args, out) -> int:
    from repro.engine import NIST_NUMBER_TO_ID, run_batch
    from repro.nist.suite import HW_SUITABLE_TESTS, NIST_TEST_NAMES

    if args.tests == "hw":
        tests = list(HW_SUITABLE_TESTS)
    elif args.tests == "all":
        tests = list(range(1, 16))
    else:
        try:
            tests = [int(part) for part in args.tests.split(",") if part.strip()]
        except ValueError:
            print(f"error: --tests must be 'hw', 'all' or numbers, got {args.tests!r}", file=out)
            return 2
        unknown = [number for number in tests if number not in NIST_TEST_NAMES]
        if unknown or not tests:
            print(f"error: unknown test numbers {unknown or args.tests!r} (valid: 1..15)", file=out)
            return 2
    try:
        source = _make_source(args.source, args.seed, args.parameter, args.length)
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    matrix = source.generate_matrix(
        args.sequences, args.length, packed=args.backend == "packed"
    )
    # The span doubles as the throughput timer (spans always measure time;
    # repro.obs is the sanctioned wall-clock home, see rule OBS001).
    with obs.span("cli.batch", sequences=args.sequences, length=args.length) as batch_span:
        reports = run_batch(matrix, tests=tests, processes=args.processes,
                            backend=args.backend)
    elapsed = batch_span.duration_s
    print(
        f"engine batch: {args.sequences} sequences x {args.length} bits from "
        f"{source.name} ({len(tests)} tests, alpha = {args.alpha}, "
        f"backend = {args.backend})",
        file=out,
    )
    # A healthy source still fails each test with probability ~alpha, so the
    # exit code flags only gross deviations from the expected pass rate.
    healthy = True
    minimum_rate = max(0.0, 1.0 - 10.0 * args.alpha)
    for number in tests:
        test_id = NIST_NUMBER_TO_ID[number]
        outcomes = [r.results[test_id] for r in reports if test_id in r.results]
        errors = sum(1 for r in reports if test_id in r.errors)
        passes = sum(1 for result in outcomes if result.passed(args.alpha))
        rate = passes / len(outcomes) if outcomes else float("nan")
        healthy = healthy and bool(outcomes) and rate >= minimum_rate
        suffix = f"  ({errors} skipped)" if errors else ""
        print(
            f"  test {number:>2}: {NIST_TEST_NAMES[number]:<44} "
            f"pass rate {rate:6.1%}{suffix}",
            file=out,
        )
    throughput = args.sequences / elapsed if elapsed > 0 else float("inf")
    print(
        f"evaluated in {elapsed:.3f} s  ({throughput:.1f} sequences/s, "
        f"{args.sequences * args.length / elapsed / 1e6:.1f} Mbit/s)",
        file=out,
    )
    return 0 if healthy else 1


def _cmd_campaign(args, out) -> int:
    from repro.eval.attribution import format_attribution_table

    designs = tuple(name.strip() for name in args.designs.split(",") if name.strip())
    selector = args.scenarios.strip()
    if selector == "all":
        scenarios: tuple = ()
    elif selector in SCENARIO_CATEGORIES:
        scenarios = tuple(
            spec.label for spec in DEFAULT_CATALOG.select(categories=[selector])
        )
    else:
        scenarios = tuple(label.strip() for label in selector.split(",") if label.strip())
    config = CampaignConfig(
        designs=designs,
        scenarios=scenarios,
        trials=args.trials,
        sequences_per_trial=args.sequences,
        alpha=args.alpha,
        suspect_after=args.suspect_after,
        fail_after=args.fail_after,
        seed=args.seed,
        processes=args.processes,
        backend=args.backend,
    )
    try:
        config.validate()
        for label in scenarios:
            DEFAULT_CATALOG.get(label)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=out)
        return 2
    report = run_campaign(config)
    print(
        f"detection campaign: {len(report.scenarios)} scenarios x "
        f"{len(report.designs)} designs, {args.trials} trials x "
        f"{args.sequences} sequences per cell (alpha = {args.alpha}, "
        f"seed = {args.seed}, backend = {report.backend})",
        file=out,
    )
    print("", file=out)
    print(report.format_table(), file=out)
    print("", file=out)
    print("per-test attribution (trials in which each test flagged the threat):", file=out)
    print(format_attribution_table(report.threat_cells()), file=out)
    print("", file=out)
    for design in report.designs:
        rate = report.control_false_alarm_rate(design)
        shown = f"{rate:.3f}" if rate is not None else "n/a (no healthy controls run)"
        print(f"healthy-control false-alarm rate [{design}]: {shown}", file=out)
    detected = report.detected_everywhere()
    print(
        f"threats detected in every trial on every design: "
        f"{len(detected)}/{len(set(c.scenario for c in report.threat_cells()))}",
        file=out,
    )
    if args.json_path:
        report.save_json(args.json_path)
        print(f"JSON report written to {args.json_path}", file=out)
    if args.csv_path:
        report.save_csv(args.csv_path)
        print(f"CSV summary written to {args.csv_path}", file=out)
    return 0


def _configure_service_logging(quiet: bool) -> None:
    """Wire the fleet-service logger to stderr for ``fleet serve``.

    One structured line per request at INFO (method, path, status, latency);
    ``--quiet`` keeps only warnings and errors.  Library use of the service
    stays silent — only the CLI attaches a handler, and only once.
    """
    service_logger = logging.getLogger("repro.fleet.service")
    if not service_logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        service_logger.addHandler(handler)
    service_logger.setLevel(logging.WARNING if quiet else logging.INFO)


def _cmd_fleet(args, out) -> int:
    from repro.fleet import DeviceRegistry, FleetMix, FleetScheduler, serve
    from repro.fleet.durability import has_snapshot, recover_fleet

    serving = args.mode == "serve"
    try:
        # serve mode may start with zero simulated rounds; run mode without
        # rounds would silently produce no report (and no --json/--csv).
        minimum_rounds = 0 if serving else 1
        if args.rounds < minimum_rounds:
            raise ValueError(
                f"--rounds must be >= {minimum_rounds} for fleet {args.mode}"
            )
        if args.rounds == 0 and (args.json_path or args.csv_path):
            raise ValueError(
                "--json/--csv need at least one round to report on "
                "(serve with --rounds >= 1)"
            )
        if not serving and (
            args.snapshot_dir or args.restore or args.snapshot_interval is not None
        ):
            raise ValueError("--snapshot-dir/--snapshot-interval/--restore "
                             "apply to fleet serve only")
        if args.restore and not args.snapshot_dir:
            raise ValueError("--restore needs --snapshot-dir")
        if args.restore and has_snapshot(args.snapshot_dir):
            scheduler, replay = recover_fleet(
                args.snapshot_dir, processes=args.processes
            )
            registry = scheduler.registry
            print(
                f"fleet restored from {args.snapshot_dir}: "
                f"{len(registry)} devices, {len(scheduler.rounds)} rounds, "
                f"journal replay applied {replay.applied} ingests "
                f"({replay.duplicates} duplicates, {replay.errors} errors, "
                f"{replay.rounds_applied} rounds)",
                file=out,
            )
        else:
            if args.restore:
                print(
                    f"no snapshot under {args.snapshot_dir} yet; "
                    "starting a fresh fleet",
                    file=out,
                )
            if args.mix:
                mix = FleetMix.parse(args.mix)
            else:
                mix = FleetMix.healthy_with_threats(0.95)
            registry = DeviceRegistry(
                args.design,
                alpha=args.alpha,
                suspect_after=args.suspect_after,
                fail_after=args.fail_after,
            )
            # A fleet may start empty (external devices register over HTTP);
            # populate() would reject zero devices.
            if args.devices > 0:
                registry.populate(args.devices, mix, seed=args.seed)
            scheduler = FleetScheduler(
                registry,
                processes=args.processes,
                backend=args.backend,
                streaming=args.streaming,
            )
    except (KeyError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=out)
        return 2
    print(
        f"fleet: {len(registry)} devices on {registry.design_name} "
        f"(n = {registry.n}, alpha = {registry.alpha}, seed = {args.seed}, "
        f"backend = {scheduler.backend})",
        file=out,
    )
    counts = registry.scenario_counts()
    print("mix: " + ", ".join(f"{label}: {count}" for label, count in counts.items()),
          file=out)
    if args.rounds > 0:
        for _ in range(args.rounds):
            fleet_round = scheduler.run_round()
            health = fleet_round.health
            print(
                f"round {fleet_round.index:>3}  healthy {health.get('healthy', 0):>5}  "
                f"suspect {health.get('suspect', 0):>4}  failed {health.get('failed', 0):>4}  "
                f"({fleet_round.devices_per_s:,.0f} devices/s)",
                file=out,
            )
        report = scheduler.report()
        print("", file=out)
        print(report.format_table(), file=out)
        rate = report.false_alarm_rate()
        shown = f"{rate:.3f}" if rate is not None else "n/a (no healthy controls)"
        print(f"healthy-device false-alarm rate: {shown}", file=out)
        throughput = report.devices_per_second()
        if throughput is not None:
            print(f"scheduler throughput: {throughput:,.0f} devices/s", file=out)
        if args.json_path:
            report.save_json(args.json_path)
            print(f"JSON report written to {args.json_path}", file=out)
        if args.csv_path:
            report.save_csv(args.csv_path)
            print(f"CSV summary written to {args.csv_path}", file=out)
    if serving:
        return _serve_fleet(args, scheduler, out)
    scheduler.close()
    return 0


def _serve_fleet(args, scheduler, out) -> int:
    """The ``fleet serve`` loop: durability, signals, graceful drain.

    The server runs on a worker thread while the main thread waits on a
    stop event set by SIGTERM/SIGINT (``server.shutdown()`` deadlocks when
    called from the ``serve_forever`` thread itself).  Shutdown drains
    in-flight ingests, writes a final snapshot when durability is on, and
    the exit code records whether the drain was clean (0) or dirty (3).
    """
    import signal
    import threading

    from repro.fleet import serve
    from repro.fleet.durability import DurableFleet
    from repro.fleet.service import MAX_BODY_BYTES

    _configure_service_logging(quiet=args.quiet)
    durable = None
    if args.snapshot_dir:
        durable = DurableFleet(
            scheduler,
            args.snapshot_dir,
            snapshot_interval_s=args.snapshot_interval,
            fsync_journal=args.wal_fsync,
        )
        durable.start()
        print(f"durability spool at {args.snapshot_dir} "
              f"(snapshot written, journal live)", file=out)
    server = serve(
        scheduler,
        host=args.host,
        port=args.port,
        max_body_bytes=args.max_body_bytes or MAX_BODY_BYTES,
        max_inflight_ingests=args.max_inflight,
        quarantine_after=args.quarantine_after,
    )
    service = server.service
    host, port = server.server_address
    stop = threading.Event()
    if threading.current_thread() is threading.main_thread():
        # Embedders (tests) may run this off the main thread, where signal
        # handlers cannot be installed; Ctrl-C still works via the
        # KeyboardInterrupt catch below.
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda _sig, _frame: stop.set())
    worker = threading.Thread(
        target=server.serve_forever, name="fleet-serve", daemon=True
    )
    worker.start()
    print(f"fleet service listening on http://{host}:{port}", file=out, flush=True)
    print("endpoints: POST /devices, POST /ingest, "
          "GET /devices/<id>/health, GET /fleet/summary, "
          "GET /metrics, GET /metrics.json", file=out, flush=True)
    clean = True
    try:
        stop.wait()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    print("shutting down: draining in-flight ingests", file=out, flush=True)
    server.shutdown()
    worker.join()
    # New ingests are refused (503) from here; bounded wait for the rest.
    if not service.drain(timeout=10.0):
        clean = False
        print("warning: drain timed out with ingests still in flight", file=out)
    if durable is not None:
        try:
            durable.close(final_snapshot=True)
            print("final snapshot written", file=out)
        except Exception as exc:  # pragma: no cover - disk full etc.
            clean = False
            print(f"warning: final snapshot failed: {exc}", file=out)
    server.server_close()
    scheduler.close()
    print(f"fleet service stopped ({'clean' if clean else 'dirty'})", file=out)
    return 0 if clean else 3


def _cmd_chaos(args, out) -> int:
    """Run the fault-injection harness and report the recovery verdict."""
    from repro.fleet.chaos import ChaosConfig, run_chaos

    try:
        config = ChaosConfig(
            devices=args.devices,
            chunks_per_device=args.chunks,
            seed=args.seed,
            design=args.design,
            kill_after_acks=args.kill_after,
            drop_rate=args.drop,
            duplicate_rate=args.duplicate,
            reorder_rate=args.reorder,
            corrupt_rate=args.corrupt,
            snapshot_interval_s=args.snapshot_interval,
            backend=args.backend,
            streaming=args.streaming,
            workdir=args.workdir,
        )
        result = run_chaos(config, out=None if args.quiet else out)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=out)
        return 2
    report = result.to_dict()
    if args.report:
        from repro.fleet.durability import atomic_write_json

        atomic_write_json(args.report, report)
        print(f"recovery report written to {args.report}", file=out)
    print(
        f"chaos: killed after {result.acks_before_kill} acks, "
        f"{result.faults_injected} faults injected, "
        f"restart replay applied {result.replay_applied} ingests "
        f"({result.replay_duplicates} duplicates)",
        file=out,
    )
    if result.matched:
        print("recovered fleet matches the uninterrupted control run "
              "(bit-identical per-device health)", file=out)
        return 0
    print("MISMATCH between recovered fleet and control run:", file=out)
    for line in result.mismatches[:20]:
        print(f"  {line}", file=out)
    return 1


def _cmd_metrics(args, out) -> int:
    """Run the wrapped workload (if any), then dump the metrics registry."""
    workload = list(args.workload)
    if workload and workload[0] == "--":
        workload = workload[1:]
    if workload and workload[0] == "metrics":
        print("error: the metrics command cannot wrap itself", file=out)
        return 2
    code = main(workload, out) if workload else 0
    if args.json_output:
        json.dump(obs.registry().snapshot(), out, indent=2)
        print("", file=out)
    else:
        print(obs.registry().render_text(), file=out, end="")
    return code


def _dispatch(args, out) -> int:
    if args.command == "designs":
        return _cmd_designs(out)
    if args.command == "evaluate":
        return _cmd_evaluate(args, out)
    if args.command == "monitor":
        return _cmd_monitor(args, out)
    if args.command == "suite":
        return _cmd_suite(args, out)
    if args.command == "batch":
        return _cmd_batch(args, out)
    if args.command == "campaign":
        return _cmd_campaign(args, out)
    if args.command == "fleet":
        return _cmd_fleet(args, out)
    if args.command == "chaos":
        return _cmd_chaos(args, out)
    if args.command == "lint":
        from repro.analysis.cli import run_from_args

        return run_from_args(args, out)
    if args.command == "metrics":
        return _cmd_metrics(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace_path", None)
    if trace_path:
        # Only this command's spans should land in the file, not whatever an
        # embedding process recorded before.
        obs.clear_traces()
    code = _dispatch(args, out)
    if trace_path:
        with open(trace_path, "w", encoding="utf-8") as handle:
            json.dump({"traces": obs.export_traces()}, handle, indent=2)
            handle.write("\n")
        print(f"trace written to {trace_path}", file=out)
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
