"""NIST test 3: The Runs Test.

Counts the total number of runs (maximal blocks of identical consecutive
bits) and checks whether that count is consistent with a random sequence,
given the observed proportion of ones.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nist.common import BitsLike, TestResult, erfc, to_bits

__all__ = ["runs_test", "runs_test_from_context", "count_runs"]


def _runs_result(n: int, ones: int, v_obs: int) -> TestResult:
    """Decision math shared by the direct and context-aware entry points."""
    pi = ones / n
    tau = 2.0 / math.sqrt(n)
    pretest_passed = abs(pi - 0.5) < tau
    if not pretest_passed:
        p_value = 0.0
        statistic = float("inf")
    else:
        numerator = abs(v_obs - 2.0 * n * pi * (1.0 - pi))
        denominator = 2.0 * math.sqrt(2.0 * n) * pi * (1.0 - pi)
        statistic = numerator / denominator if denominator > 0 else float("inf")
        p_value = erfc(statistic) if math.isfinite(statistic) else 0.0
    return TestResult(
        name="Runs Test",
        statistic=statistic,
        p_value=p_value,
        details={
            "n": n,
            "ones": ones,
            "runs": v_obs,
            "proportion": pi,
            "pretest_passed": pretest_passed,
            "tau": tau,
        },
    )


def count_runs(bits: BitsLike) -> int:
    """Total number of runs in the sequence (V_n(obs) in the NIST spec)."""
    arr = to_bits(bits)
    if arr.size == 0:
        return 0
    return int(np.count_nonzero(np.diff(arr.astype(np.int8)))) + 1


def runs_test(bits: BitsLike) -> TestResult:
    """Run the runs test.

    The test is only meaningful when the frequency test passes; following the
    NIST spec, if the proportion of ones deviates from 1/2 by at least
    ``2/sqrt(n)`` the P-value is reported as 0.0 (the sequence fails without
    evaluating the runs statistic).

    Returns
    -------
    TestResult
        ``details`` contains ``ones``, ``runs`` and the pre-test proportion
        check outcome.
    """
    arr = to_bits(bits)
    n = arr.size
    if n == 0:
        raise ValueError("runs test requires a non-empty sequence")
    return _runs_result(n, int(arr.sum()), count_runs(arr))


def runs_test_from_context(context) -> TestResult:
    """Context-aware entry point: the ones count and run count come from the
    shared context's memoized statistics instead of a re-scan."""
    if context.n == 0:
        raise ValueError("runs test requires a non-empty sequence")
    return _runs_result(context.n, context.ones, context.num_runs())
