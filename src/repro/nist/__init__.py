"""Reference implementations of the NIST SP 800-22 statistical test suite.

This package is the *golden model* of the reproduction.  The paper selects 9
of the 15 NIST tests for hardware/software co-design (see
:mod:`repro.hwtests` and :mod:`repro.sw`); this package provides full
floating-point implementations of **all 15 tests** so that

* the HW/SW split of Table II can be validated against a trusted reference,
* the suitability classification of Table I can be justified quantitatively,
* downstream users get a complete, self-contained NIST STS port.

Every test is a function taking a bit sequence (anything accepted by
:func:`repro.nist.common.to_bits`) plus test parameters, and returning a
:class:`repro.nist.common.TestResult` with the decision statistic(s),
P-value(s) and a ``passed(alpha)`` helper.
"""

from repro.nist.common import BitSequence, TestResult, to_bits
from repro.nist.frequency import frequency_test
from repro.nist.block_frequency import block_frequency_test
from repro.nist.runs import runs_test
from repro.nist.longest_run import longest_run_test
from repro.nist.rank import binary_matrix_rank_test
from repro.nist.dft import dft_test
from repro.nist.nonoverlapping import non_overlapping_template_test
from repro.nist.overlapping import overlapping_template_test
from repro.nist.universal import universal_test
from repro.nist.linear_complexity import linear_complexity_test
from repro.nist.serial import serial_test
from repro.nist.approximate_entropy import approximate_entropy_test
from repro.nist.cusum import cumulative_sums_test
from repro.nist.random_excursions import random_excursions_test
from repro.nist.random_excursions_variant import random_excursions_variant_test
from repro.nist.suite import NistSuite, SuiteReport, run_all_tests

__all__ = [
    "BitSequence",
    "TestResult",
    "to_bits",
    "frequency_test",
    "block_frequency_test",
    "runs_test",
    "longest_run_test",
    "binary_matrix_rank_test",
    "dft_test",
    "non_overlapping_template_test",
    "overlapping_template_test",
    "universal_test",
    "linear_complexity_test",
    "serial_test",
    "approximate_entropy_test",
    "cumulative_sums_test",
    "random_excursions_test",
    "random_excursions_variant_test",
    "NistSuite",
    "SuiteReport",
    "run_all_tests",
]
