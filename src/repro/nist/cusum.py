"""NIST test 13: The Cumulative Sums (Cusum) Test.

Tracks the random walk defined by the ±1-mapped sequence and checks whether
its maximal excursion from zero is too large (or too small) for a random
sequence.  The test is run in two modes: forward (mode 0) and backward
(mode 1, the sequence reversed).
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special as _special

from repro.nist.common import BitsLike, TestResult, to_bits

__all__ = [
    "cumulative_sums_test",
    "cumulative_sums_test_from_context",
    "cusum_p_value",
    "random_walk_extremes",
]


def random_walk_extremes(bits: BitsLike) -> tuple[int, int, int]:
    """Return ``(S_max, S_min, S_final)`` of the ±1 random walk.

    These are exactly the three values the paper's hardware block provides to
    the software for the cumulative-sums test (Table II).
    """
    arr = to_bits(bits)
    walk = np.cumsum(2 * arr.astype(np.int64) - 1)
    if walk.size == 0:
        return 0, 0, 0
    return int(walk.max()), int(walk.min()), int(walk[-1])


def cusum_p_value(z: int, n: int) -> float:
    """P-value of the cusum test given the maximal excursion ``z``.

    Implements the double sum of equation (2.13.1)/(2.13.2) of NIST
    SP 800-22 using the standard normal CDF.  The summation bounds follow the
    NIST reference implementation's convention (integer division truncated
    towards zero) so that the published worked examples are reproduced to
    the last printed digit; for realistic sequence lengths the choice of
    truncation is numerically irrelevant.
    """
    if n <= 0:
        raise ValueError("sequence length n must be positive")
    if z <= 0:
        # A zero excursion can only happen for the degenerate n = 0 case; for
        # any non-empty sequence the first step already gives |S_1| = 1.
        return 0.0
    # The Φ evaluations dominate the software verdict cost at fleet scale
    # (healthy walks make the k ranges O(n / z) ≈ O(sqrt(n)) terms long), so
    # they run vectorised; the accumulation stays a sequential loop in the
    # original term order so every P-value is bit-identical to the scalar
    # reference implementation, last digit included.
    sqrt_n = math.sqrt(n)
    total = 1.0
    start = int((-n / z + 1) / 4)
    stop = int((n / z - 1) / 4)
    k = np.arange(start, stop + 1, dtype=np.int64)
    for term in _normal_cdf_values((4 * k + 1) * z / sqrt_n) - _normal_cdf_values(
        (4 * k - 1) * z / sqrt_n
    ):
        total -= float(term)
    start = int((-n / z - 3) / 4)
    k = np.arange(start, stop + 1, dtype=np.int64)
    for term in _normal_cdf_values((4 * k + 3) * z / sqrt_n) - _normal_cdf_values(
        (4 * k + 1) * z / sqrt_n
    ):
        total += float(term)
    return min(max(total, 0.0), 1.0)


def _normal_cdf_values(x: np.ndarray) -> np.ndarray:
    """Standard normal CDF Φ, elementwise — the same ``0.5·erfc(-x/√2)``
    doubles :func:`repro.nist.common.normal_cdf` produces one at a time."""
    return 0.5 * _special.erfc(-x / math.sqrt(2.0))


def cumulative_sums_test(bits: BitsLike, mode: int = 0) -> TestResult:
    """Run the cumulative-sums test.

    Parameters
    ----------
    bits:
        The bit sequence under test.
    mode:
        0 for the forward walk, 1 for the backward walk (sequence reversed).

    Returns
    -------
    TestResult
        ``details`` contains the walk extremes ``s_max``/``s_min``/``s_final``
        of the *forward* walk (the hardware-provided values) together with
        the excursion ``z`` used for the reported mode.
    """
    arr = to_bits(bits)
    n = arr.size
    if n == 0:
        raise ValueError("cumulative sums test requires a non-empty sequence")
    if mode not in (0, 1):
        raise ValueError("mode must be 0 (forward) or 1 (backward)")
    return _cusum_result(n, mode, *random_walk_extremes(arr))


def cumulative_sums_test_from_context(context, mode: int = 0) -> TestResult:
    """Context-aware entry point: the walk extremes come from the shared
    context's memoized ±1 cumulative sums instead of a re-scan."""
    if context.n == 0:
        raise ValueError("cumulative sums test requires a non-empty sequence")
    if mode not in (0, 1):
        raise ValueError("mode must be 0 (forward) or 1 (backward)")
    return _cusum_result(context.n, mode, *context.walk_extremes())


def _cusum_result(n: int, mode: int, s_max: int, s_min: int, s_final: int) -> TestResult:
    """Decision math shared by the direct and context-aware entry points."""
    if mode == 0:
        z = max(abs(s_max), abs(s_min))
    else:
        # Backward excursion from the forward-walk summary values: the
        # reversed walk's partial sums are S_final - S_{n-k}, so its maximal
        # absolute excursion is max(S_final - S_min, S_max - S_final).
        z = max(s_final - s_min, s_max - s_final)
    p_value = cusum_p_value(z, n)
    return TestResult(
        name=f"Cumulative Sums Test (mode {mode})",
        statistic=float(z),
        p_value=p_value,
        details={
            "n": n,
            "mode": mode,
            "s_max": s_max,
            "s_min": s_min,
            "s_final": s_final,
            "z": z,
        },
    )
