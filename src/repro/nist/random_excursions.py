"""NIST test 14: The Random Excursions Test.

Examines the number of cycles of the cumulative-sum random walk that visit a
given state x exactly k times, for the eight states x in {-4..-1, 1..4}.
Classified as unsuitable for compact hardware by the paper (Table I) — it
requires per-state, per-visit-count bookkeeping across an unbounded number of
cycles.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.nist.common import BitsLike, TestResult, igamc, to_bits

__all__ = [
    "random_excursions_test",
    "excursions_decision",
    "walk_cycles",
    "EXCURSION_STATES",
]

#: The eight states examined by the test.
EXCURSION_STATES = (-4, -3, -2, -1, 1, 2, 3, 4)


def walk_cycles(bits: BitsLike) -> List[np.ndarray]:
    """Split the cumulative-sum random walk into zero-to-zero cycles.

    The walk is prepended and appended with a zero (per the NIST spec); each
    returned array is one cycle, starting and ending at zero.
    """
    arr = to_bits(bits)
    walk = np.concatenate([[0], np.cumsum(2 * arr.astype(np.int64) - 1)])
    if walk[-1] != 0:
        walk = np.concatenate([walk, [0]])
    zero_positions = np.flatnonzero(walk == 0)
    cycles = []
    for start, stop in zip(zero_positions[:-1], zero_positions[1:]):
        cycles.append(walk[start : stop + 1])
    return cycles


def _state_probabilities(x: int) -> List[float]:
    """π_k(x) for k = 0..5: probability that state x is visited exactly k times."""
    ax = abs(x)
    pi = [1.0 - 1.0 / (2.0 * ax)]
    for k in range(1, 5):
        pi.append(1.0 / (4.0 * ax * ax) * (1.0 - 1.0 / (2.0 * ax)) ** (k - 1))
    pi.append(1.0 / (2.0 * ax) * (1.0 - 1.0 / (2.0 * ax)) ** 4)
    return pi


def excursions_decision(histograms: Dict[int, np.ndarray], j: int, n: int) -> TestResult:
    """Decision math of the excursions test from the per-state histograms.

    ``histograms[x][k]`` counts cycles visiting state ``x`` exactly ``k``
    times (``k = 5`` pools five-or-more).  Shared by the scalar reference and
    the batched kernel (:func:`repro.engine.heavy.batch_random_excursions`):
    identical integer histograms give bit-identical results.
    """
    p_values = []
    statistics = []
    for x in EXCURSION_STATES:
        pi = _state_probabilities(x)
        expected = j * np.array(pi)
        observed = np.asarray(histograms[x]).astype(np.float64)
        chi_squared = float(np.sum((observed - expected) ** 2 / expected))
        statistics.append(chi_squared)
        p_values.append(igamc(2.5, chi_squared / 2.0))
    return TestResult(
        name="Random Excursions Test",
        statistic=max(statistics),
        p_value=min(p_values),
        p_values=p_values,
        details={
            "n": n,
            "num_cycles": j,
            "j_below_recommendation": j < 500,
            "states": list(EXCURSION_STATES),
            "histograms": {
                x: [int(k) for k in histograms[x]] for x in EXCURSION_STATES
            },
            "statistics": statistics,
        },
    )


def random_excursions_test(bits: BitsLike) -> TestResult:
    """Run the random excursions test.

    Returns
    -------
    TestResult
        Eight P-values, one per state; ``details`` contains the number of
        cycles J and the per-state visit histograms.  Following the NIST
        spec, if J < 500 the test is still computed but flagged in
        ``details['j_below_recommendation']``.
    """
    arr = to_bits(bits)
    n = arr.size
    if n == 0:
        raise ValueError("random excursions test requires a non-empty sequence")
    cycles = walk_cycles(arr)
    j = len(cycles)
    if j == 0:
        raise ValueError("random walk produced no cycles")
    histograms: Dict[int, np.ndarray] = {
        x: np.zeros(6, dtype=np.int64) for x in EXCURSION_STATES
    }
    for cycle in cycles:
        for x in EXCURSION_STATES:
            visits = int(np.count_nonzero(cycle == x))
            histograms[x][min(visits, 5)] += 1
    return excursions_decision(histograms, j, n)
