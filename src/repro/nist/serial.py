"""NIST test 11: The Serial Test.

Checks the uniformity of overlapping ``m``-bit patterns across the sequence
via the ψ² statistics of three consecutive pattern lengths.  The paper's
hardware block provides the raw pattern counts ν (for m, m−1 and m−2 bits);
the software computes ψ², the differences ∇ψ² and ∇²ψ² and compares them
with critical values.
"""

from __future__ import annotations

from repro.nist.common import BitsLike, TestResult, igamc, pattern_counts, psi_squared, to_bits

__all__ = ["serial_test"]


def serial_test(bits: BitsLike, m: int = 4) -> TestResult:
    """Run the serial test with pattern length ``m``.

    Parameters
    ----------
    bits:
        The bit sequence under test.
    m:
        Pattern length; the paper uses m = 4 (so the hardware maintains the
        16 four-bit, 8 three-bit and 4 two-bit cyclic pattern counters listed
        in Table II).  NIST requires ``m < floor(log2 n) - 2``.

    Returns
    -------
    TestResult
        Two P-values (for ∇ψ²_m and ∇²ψ²_m); ``details`` contains the pattern
        counts and all ψ² values.
    """
    arr = to_bits(bits)
    n = arr.size
    if m < 2:
        raise ValueError("serial test requires m >= 2")
    if n < (1 << m):
        raise ValueError(f"sequence too short (n={n}) for pattern length m={m}")
    psi_m = psi_squared(arr, m)
    psi_m1 = psi_squared(arr, m - 1)
    psi_m2 = psi_squared(arr, m - 2)
    del1 = psi_m - psi_m1
    del2 = psi_m - 2.0 * psi_m1 + psi_m2
    p_value1 = igamc(2 ** (m - 2), del1 / 2.0)
    p_value2 = igamc(2 ** (m - 3), del2 / 2.0)
    return TestResult(
        name="Serial Test",
        statistic=del1,
        p_value=p_value1,
        p_values=[p_value1, p_value2],
        details={
            "n": n,
            "m": m,
            "psi_m": psi_m,
            "psi_m1": psi_m1,
            "psi_m2": psi_m2,
            "del1": del1,
            "del2": del2,
            "counts_m": pattern_counts(arr, m).tolist(),
            "counts_m1": pattern_counts(arr, m - 1).tolist(),
            "counts_m2": pattern_counts(arr, m - 2).tolist() if m >= 2 else [],
        },
    )
