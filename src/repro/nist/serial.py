"""NIST test 11: The Serial Test.

Checks the uniformity of overlapping ``m``-bit patterns across the sequence
via the ψ² statistics of three consecutive pattern lengths.  The paper's
hardware block provides the raw pattern counts ν (for m, m−1 and m−2 bits);
the software computes ψ², the differences ∇ψ² and ∇²ψ² and compares them
with critical values.
"""

from __future__ import annotations

import numpy as np

from repro.nist.common import (
    BitsLike,
    TestResult,
    igamc,
    pattern_counts,
    psi_squared_from_counts,
    to_bits,
)

__all__ = ["serial_test", "serial_test_from_context"]


def _serial_result(
    n: int, m: int, counts_m: np.ndarray, counts_m1: np.ndarray, counts_m2: np.ndarray
) -> TestResult:
    """Decision math shared by the direct and context-aware entry points.

    ``counts_m2`` are the cyclic ``(m-2)``-bit pattern counts; for ``m == 2``
    that is the single count ``[n]`` and ψ²_0 is 0 by definition.
    """
    psi_m = psi_squared_from_counts(counts_m, n)
    psi_m1 = psi_squared_from_counts(counts_m1, n)
    psi_m2 = psi_squared_from_counts(counts_m2, n) if m > 2 else 0.0
    del1 = psi_m - psi_m1
    del2 = psi_m - 2.0 * psi_m1 + psi_m2
    p_value1 = igamc(2 ** (m - 2), del1 / 2.0)
    p_value2 = igamc(2 ** (m - 3), del2 / 2.0)
    return TestResult(
        name="Serial Test",
        statistic=del1,
        p_value=p_value1,
        p_values=[p_value1, p_value2],
        details={
            "n": n,
            "m": m,
            "psi_m": psi_m,
            "psi_m1": psi_m1,
            "psi_m2": psi_m2,
            "del1": del1,
            "del2": del2,
            "counts_m": counts_m.tolist(),
            "counts_m1": counts_m1.tolist(),
            "counts_m2": counts_m2.tolist(),
        },
    )


def serial_test(bits: BitsLike, m: int = 4) -> TestResult:
    """Run the serial test with pattern length ``m``.

    Parameters
    ----------
    bits:
        The bit sequence under test.
    m:
        Pattern length; the paper uses m = 4 (so the hardware maintains the
        16 four-bit, 8 three-bit and 4 two-bit cyclic pattern counters listed
        in Table II).  NIST requires ``m < floor(log2 n) - 2``.

    Returns
    -------
    TestResult
        Two P-values (for ∇ψ²_m and ∇²ψ²_m); ``details`` contains the pattern
        counts and all ψ² values.
    """
    arr = to_bits(bits)
    n = arr.size
    if m < 2:
        raise ValueError("serial test requires m >= 2")
    if n < (1 << m):
        raise ValueError(f"sequence too short (n={n}) for pattern length m={m}")
    return _serial_result(
        n,
        m,
        pattern_counts(arr, m, cyclic=True),
        pattern_counts(arr, m - 1, cyclic=True),
        pattern_counts(arr, m - 2, cyclic=True),
    )


def serial_test_from_context(context, m: int = 4) -> TestResult:
    """Context-aware entry point: the cyclic pattern counters are the shared
    context's (the same counters the approximate-entropy test reads)."""
    n = context.n
    if m < 2:
        raise ValueError("serial test requires m >= 2")
    if n < (1 << m):
        raise ValueError(f"sequence too short (n={n}) for pattern length m={m}")
    return _serial_result(
        n,
        m,
        context.pattern_counts(m, cyclic=True),
        context.pattern_counts(m - 1, cyclic=True),
        context.pattern_counts(m - 2, cyclic=True),
    )
