"""NIST test 1: The Frequency (Monobit) Test.

Checks whether the proportion of ones in the sequence is close to 1/2, as
expected for a truly random sequence.  This is the most basic test; NIST
recommends running it first since all subsequent tests presume it passes.
"""

from __future__ import annotations

import math

from repro.nist.common import BitsLike, TestResult, erfc, to_bits

__all__ = ["frequency_test", "frequency_test_from_context"]


def _frequency_result(n: int, ones: int) -> TestResult:
    """Decision math shared by the direct and context-aware entry points."""
    partial_sum = 2 * ones - n
    s_obs = abs(partial_sum) / math.sqrt(n)
    p_value = erfc(s_obs / math.sqrt(2.0))
    return TestResult(
        name="Frequency (Monobit) Test",
        statistic=s_obs,
        p_value=p_value,
        details={
            "n": n,
            "ones": ones,
            "zeros": n - ones,
            "partial_sum": partial_sum,
        },
    )


def frequency_test(bits: BitsLike) -> TestResult:
    """Run the frequency (monobit) test.

    The partial sum ``S_n`` of the ±1-mapped sequence is normalised to
    ``s_obs = |S_n| / sqrt(n)`` and the P-value is ``erfc(s_obs / sqrt(2))``.

    Parameters
    ----------
    bits:
        The bit sequence under test.  NIST recommends ``n >= 100``; shorter
        sequences are accepted (the hardware designs of the paper use
        ``n = 128``) but the approximation degrades.

    Returns
    -------
    TestResult
        ``details`` contains ``n``, ``ones``, ``zeros`` and ``partial_sum``.
    """
    arr = to_bits(bits)
    n = arr.size
    if n == 0:
        raise ValueError("frequency test requires a non-empty sequence")
    return _frequency_result(n, int(arr.sum()))


def frequency_test_from_context(context) -> TestResult:
    """Context-aware entry point: the ones count comes from the shared
    :class:`~repro.engine.context.SequenceContext` instead of a re-scan."""
    if context.n == 0:
        raise ValueError("frequency test requires a non-empty sequence")
    return _frequency_result(context.n, context.ones)
