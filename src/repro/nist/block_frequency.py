"""NIST test 2: Frequency Test within a Block.

Splits the sequence into ``N`` non-overlapping blocks of ``M`` bits and
checks whether the proportion of ones within each block is close to 1/2.
"""

from __future__ import annotations

import numpy as np

from repro.nist.common import BitsLike, TestResult, chunk, igamc, to_bits

__all__ = ["block_frequency_test", "block_frequency_test_from_context"]


def _validate(n: int, block_length: int) -> None:
    if block_length <= 0:
        raise ValueError("block_length must be positive")
    if block_length > n:
        raise ValueError(f"block_length M={block_length} exceeds sequence length n={n}")


def _block_frequency_result(n: int, block_length: int, ones_per_block: np.ndarray) -> TestResult:
    """Decision math shared by the direct and context-aware entry points."""
    num_blocks = int(ones_per_block.size)
    proportions = ones_per_block / block_length
    chi_squared = 4.0 * block_length * float(np.sum((proportions - 0.5) ** 2))
    p_value = igamc(num_blocks / 2.0, chi_squared / 2.0)
    return TestResult(
        name="Frequency Test within a Block",
        statistic=chi_squared,
        p_value=p_value,
        details={
            "n": n,
            "block_length": block_length,
            "num_blocks": num_blocks,
            "ones_per_block": ones_per_block.tolist(),
            "discarded_bits": n - num_blocks * block_length,
        },
    )


def block_frequency_test(bits: BitsLike, block_length: int = 128) -> TestResult:
    """Run the frequency test within a block.

    Parameters
    ----------
    bits:
        The bit sequence under test.
    block_length:
        Block length ``M``.  The hardware designs of the paper constrain
        ``M`` to powers of two (so block boundaries can be read off the
        global bit counter); the reference implementation accepts any
        positive ``M`` not exceeding the sequence length.

    Returns
    -------
    TestResult
        The statistic is χ² = 4 M Σ (π_i − 1/2)²; ``details`` contains the
        per-block ones counts (the ε_i of Table II).
    """
    arr = to_bits(bits)
    n = arr.size
    _validate(n, block_length)
    blocks = chunk(arr, block_length)
    ones_per_block = np.array([int(b.sum()) for b in blocks], dtype=np.int64)
    return _block_frequency_result(n, block_length, ones_per_block)


def block_frequency_test_from_context(context, block_length: int = 128) -> TestResult:
    """Context-aware entry point: per-block ones counts come from the shared
    context's memoized block sums instead of a fresh block scan."""
    _validate(context.n, block_length)
    return _block_frequency_result(context.n, block_length, context.block_sums(block_length))
