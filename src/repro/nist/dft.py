"""NIST test 6: The Discrete Fourier Transform (Spectral) Test.

Detects periodic features in the sequence by examining the peak heights of
its discrete Fourier transform.  Classified as unsuitable for compact
hardware by the paper (Table I) — an n-point DFT requires storage and
multipliers far beyond a counters-only datapath.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nist.common import BitsLike, TestResult, erfc, to_bits

__all__ = ["dft_test", "dft_decision", "dft_threshold"]


def dft_threshold(n: int) -> float:
    """The 95 % peak-height threshold ``T = sqrt(n · ln(1/0.05))``."""
    return math.sqrt(n * math.log(1.0 / 0.05))


def dft_decision(n1: float, n: int) -> TestResult:
    """Decision math of the spectral test from the sub-threshold peak count.

    Shared by the scalar reference and the batched FFT kernel
    (:func:`repro.engine.heavy.batch_dft`): given the same integer-valued
    ``n1`` both paths produce bit-identical results.
    """
    threshold = dft_threshold(n)
    n0 = 0.95 * n / 2.0
    d = (n1 - n0) / math.sqrt(n * 0.95 * 0.05 / 4.0)
    p_value = erfc(abs(d) / math.sqrt(2.0))
    return TestResult(
        name="Discrete Fourier Transform (Spectral) Test",
        statistic=d,
        p_value=p_value,
        details={
            "n": n,
            "threshold": threshold,
            "expected_below": n0,
            "observed_below": n1,
        },
    )


def dft_test(bits: BitsLike) -> TestResult:
    """Run the discrete Fourier transform (spectral) test.

    The ±1-mapped sequence is transformed with an FFT; the number of peaks
    in the first half of the spectrum below the 95 % threshold
    ``T = sqrt(n · ln(1/0.05))`` is compared with its expectation
    ``0.95 · n / 2``.

    Returns
    -------
    TestResult
        ``details`` contains the observed and expected sub-threshold peak
        counts and the threshold itself.
    """
    arr = to_bits(bits)
    n = arr.size
    if n < 2:
        raise ValueError("DFT test requires at least 2 bits")
    x = 2 * arr.astype(np.float64) - 1
    spectrum = np.abs(np.fft.fft(x))[: n // 2]
    n1 = float(np.count_nonzero(spectrum < dft_threshold(n)))
    return dft_decision(n1, n)
