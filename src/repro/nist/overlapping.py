"""NIST test 8: The Overlapping Template Matching Test.

Counts *overlapping* occurrences of an ``m``-bit all-ones template within
each block, buckets the blocks into K+1 categories by occurrence count and
compares the category frequencies against theoretical probabilities derived
from the compound-Poisson approximation.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.nist.common import BitsLike, TestResult, bits_to_int, igamc, to_bits

__all__ = [
    "overlapping_template_test",
    "overlapping_template_test_from_context",
    "count_overlapping",
    "overlapping_probabilities",
    "DEFAULT_TEMPLATE_ONES_9",
]

#: Default template for the overlapping test: nine consecutive ones.
DEFAULT_TEMPLATE_ONES_9: tuple = (1,) * 9


def count_overlapping(block: BitsLike, template: Sequence[int]) -> int:
    """Count overlapping occurrences of ``template`` in ``block``.

    Unlike the non-overlapping scan, the window always advances by a single
    bit position, so occurrences may share bits.
    """
    arr = to_bits(block)
    tmpl = np.asarray(template, dtype=np.uint8)
    m = tmpl.size
    count = 0
    for i in range(arr.size - m + 1):
        if np.array_equal(arr[i : i + m], tmpl):
            count += 1
    return count


def _pr(u: int, eta: float) -> float:
    """Probability of ``u`` overlapping occurrences (NIST's Pr(u, eta))."""
    if u == 0:
        return math.exp(-eta)
    total = 0.0
    for ell in range(1, u + 1):
        log_term = (
            -eta
            - u * math.log(2)
            + ell * math.log(eta)
            - math.lgamma(ell + 1)
            + math.lgamma(u)
            - math.lgamma(ell)
            - math.lgamma(u - ell + 1)
        )
        total += math.exp(log_term)
    return total


def overlapping_probabilities(block_length: int, template_length: int, k: int = 5) -> List[float]:
    """Category probabilities π_0..π_K for the overlapping template test.

    Computed from the compound-Poisson approximation with
    λ = (M − m + 1) / 2^m and η = λ / 2; the final category absorbs the
    remaining probability mass.  For the NIST reference parameters
    (M = 1032, m = 9) this reproduces the tabulated values of SP 800-22 to
    within rounding.
    """
    lam = (block_length - template_length + 1) / (1 << template_length)
    if lam <= 0:
        raise ValueError("block too short for the given template")
    eta = lam / 2.0
    pi = [_pr(u, eta) for u in range(k)]
    pi.append(1.0 - sum(pi))
    return pi


def overlapping_template_test(
    bits: BitsLike,
    template: Sequence[int] = DEFAULT_TEMPLATE_ONES_9,
    block_length: int = 1032,
    k: int = 5,
) -> TestResult:
    """Run the overlapping template matching test.

    Parameters
    ----------
    bits:
        The bit sequence under test.
    template:
        The template B (default: nine consecutive ones).
    block_length:
        Block length ``M``.  NIST uses 1032; the paper's hardware designs use
        the power of two 1024, for which the category probabilities are
        recomputed exactly by :func:`overlapping_probabilities`.
    k:
        Number of non-terminal categories K (default 5, i.e. categories
        0, 1, 2, 3, 4 and >= 5).

    Returns
    -------
    TestResult
        ``details`` contains the per-category block counts (the ν_temp,i of
        Table II) and the probabilities π_i used.
    """
    arr = to_bits(bits)
    n = arr.size
    template, num_blocks = _validate(n, template, block_length)
    categories = np.zeros(k + 1, dtype=np.int64)
    for i in range(num_blocks):
        block = arr[i * block_length : (i + 1) * block_length]
        occurrences = count_overlapping(block, template)
        categories[min(occurrences, k)] += 1
    return _overlapping_result(n, template, block_length, num_blocks, k, categories)


def overlapping_template_test_from_context(
    context,
    template: Sequence[int] = DEFAULT_TEMPLATE_ONES_9,
    block_length: int = 1032,
    k: int = 5,
) -> TestResult:
    """Context-aware entry point: per-block occurrence counts are read off
    the shared ``m``-bit window values (also used by the non-overlapping
    test) instead of a per-window template comparison scan."""
    n = context.n
    template, num_blocks = _validate(n, template, block_length)
    m = len(template)
    values = context.window_values(m)
    target = bits_to_int(template)
    windows_per_block = block_length - m + 1
    categories = np.zeros(k + 1, dtype=np.int64)
    for i in range(num_blocks):
        occurrences = int(
            np.count_nonzero(
                values[i * block_length : i * block_length + windows_per_block] == target
            )
        )
        categories[min(occurrences, k)] += 1
    return _overlapping_result(n, template, block_length, num_blocks, k, categories)


def _validate(n: int, template: Sequence[int], block_length: int):
    template = tuple(int(b) for b in template)
    if block_length < len(template):
        raise ValueError("block_length must be at least the template length")
    num_blocks = n // block_length
    if num_blocks < 1:
        raise ValueError("sequence too short for a single block")
    return template, num_blocks


def _overlapping_result(
    n: int, template: tuple, block_length: int, num_blocks: int, k: int, categories: np.ndarray
) -> TestResult:
    """Decision math shared by the direct and context-aware entry points."""
    m = len(template)
    pi = overlapping_probabilities(block_length, m, k)
    expected = num_blocks * np.array(pi)
    chi_squared = float(np.sum((categories - expected) ** 2 / expected))
    p_value = igamc(k / 2.0, chi_squared / 2.0)
    return TestResult(
        name="Overlapping Template Matching Test",
        statistic=chi_squared,
        p_value=p_value,
        details={
            "n": n,
            "template": template,
            "template_length": m,
            "block_length": block_length,
            "num_blocks": num_blocks,
            "k": k,
            "categories": categories.tolist(),
            "pi": pi,
        },
    )
