"""NIST test 9: Maurer's "Universal Statistical" Test.

Measures the compressibility of the sequence via the distances between
repeated occurrences of L-bit blocks.  Classified as unsuitable for compact
hardware by the paper (Table I) — the test needs a 2^L-entry position table
and logarithm evaluations.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

from repro.nist.common import BitsLike, TestResult, erfc, to_bits

__all__ = [
    "universal_test",
    "universal_decision",
    "UNIVERSAL_CONSTANTS",
    "recommended_l",
]

#: NIST-tabulated (expectedValue, variance) for block length L.
UNIVERSAL_CONSTANTS: Dict[int, Tuple[float, float]] = {
    6: (5.2177052, 2.954),
    7: (6.1962507, 3.125),
    8: (7.1836656, 3.238),
    9: (8.1764248, 3.311),
    10: (9.1723243, 3.356),
    11: (10.170032, 3.384),
    12: (11.168765, 3.401),
    13: (12.168070, 3.410),
    14: (13.167693, 3.416),
    15: (14.167488, 3.419),
    16: (15.167379, 3.421),
}


def recommended_l(n: int) -> int:
    """NIST-recommended block length L for a sequence of ``n`` bits."""
    thresholds = [
        (387840, 6),
        (904960, 7),
        (2068480, 8),
        (4654080, 9),
        (10342400, 10),
        (22753280, 11),
        (49643520, 12),
        (107560960, 13),
        (231669760, 14),
        (496435200, 15),
        (1059061760, 16),
    ]
    chosen = 0
    for minimum, length in thresholds:
        if n >= minimum:
            chosen = length
    if chosen == 0:
        raise ValueError(
            "sequence too short for Maurer's universal test (needs >= 387,840 bits)"
        )
    return chosen


def universal_decision(distances: np.ndarray, L: int, Q: int, K: int, n: int) -> TestResult:
    """Decision math of the universal test from the integer gap distances.

    ``distances[k]`` is the number of blocks since the previous occurrence of
    test block ``Q + k``'s value (``i + 1`` for a first occurrence at block
    index ``i``).  Shared by the scalar reference and the batched kernel
    (:func:`repro.engine.heavy.batch_universal`): identical integer distances
    give bit-identical results, because both paths sum ``log2`` terms through
    the same ``np.sum`` reduction.
    """
    total = float(np.log2(distances.astype(np.float64)).sum())
    fn = total / K
    expected, variance = UNIVERSAL_CONSTANTS[L]
    c = 0.7 - 0.8 / L + (4.0 + 32.0 / L) * (K ** (-3.0 / L)) / 15.0
    sigma = c * math.sqrt(variance / K)
    statistic = abs(fn - expected) / (math.sqrt(2.0) * sigma)
    p_value = erfc(statistic)
    return TestResult(
        name="Maurer's Universal Statistical Test",
        statistic=fn,
        p_value=p_value,
        details={
            "n": n,
            "L": L,
            "Q": Q,
            "K": K,
            "fn": fn,
            "expected": expected,
            "variance": variance,
            "sigma": sigma,
        },
    )


def universal_test(bits: BitsLike, block_length: int | None = None, init_blocks: int | None = None) -> TestResult:
    """Run Maurer's universal statistical test.

    Parameters
    ----------
    bits:
        The bit sequence under test.  NIST's recommended minimum length is
        387,840 bits for L = 6; to allow testing on shorter (clearly
        documented, non-compliant) inputs, explicit ``block_length`` and
        ``init_blocks`` may be supplied.
    block_length:
        L-bit block size (6..16).  Defaults to the NIST recommendation.
    init_blocks:
        Number of initialisation blocks Q (default ``10 * 2**L``).

    Returns
    -------
    TestResult
        ``details`` contains the test statistic f_n, the reference
        expectation/variance and the block counts Q and K.
    """
    arr = to_bits(bits)
    n = arr.size
    L = block_length if block_length is not None else recommended_l(n)
    if L not in UNIVERSAL_CONSTANTS:
        raise ValueError(f"block_length must be one of {sorted(UNIVERSAL_CONSTANTS)}")
    Q = init_blocks if init_blocks is not None else 10 * (1 << L)
    total_blocks = n // L
    K = total_blocks - Q
    if K <= 0:
        raise ValueError(
            f"sequence too short: {total_blocks} blocks available but Q={Q} needed for initialisation"
        )
    weights = 1 << np.arange(L - 1, -1, -1)
    block_values = (
        arr[: total_blocks * L].reshape(total_blocks, L).astype(np.int64) @ weights
    )
    table = np.zeros(1 << L, dtype=np.int64)
    for i in range(Q):
        table[block_values[i]] = i + 1
    distances = np.empty(K, dtype=np.int64)
    for i in range(Q, total_blocks):
        value = block_values[i]
        distances[i - Q] = i + 1 - table[value]
        table[value] = i + 1
    return universal_decision(distances, L, Q, K, n)
