"""NIST test 5: The Binary Matrix Rank Test.

Checks for linear dependence among fixed-length substrings of the sequence by
forming 32x32 binary matrices and examining the distribution of their ranks
over GF(2).  The paper classifies this test as *not* suitable for compact
hardware (Table I) because it requires storing a full matrix and performing
Gaussian elimination; it is included here as part of the reference suite.
"""

from __future__ import annotations

import numpy as np

from repro.nist.common import BitsLike, TestResult, binary_matrix_rank, igamc, to_bits

__all__ = ["binary_matrix_rank_test", "rank_decision", "rank_probabilities"]


def rank_probabilities(m: int, q: int) -> tuple:
    """Probabilities of full rank, full rank − 1 and the remainder.

    Uses the exact product formulas from SP 800-22 section 2.5; for the
    standard 32x32 matrices these evaluate to approximately
    (0.2888, 0.5776, 0.1336).
    """
    r_full = min(m, q)

    def prob(r: int) -> float:
        product = 1.0
        for i in range(r):
            product *= (
                (1.0 - 2.0 ** (i - q)) * (1.0 - 2.0 ** (i - m)) / (1.0 - 2.0 ** (i - r))
            )
        return 2.0 ** (r * (q + m - r) - m * q) * product

    p_full = prob(r_full)
    p_full_minus_1 = prob(r_full - 1)
    return p_full, p_full_minus_1, 1.0 - p_full - p_full_minus_1


def rank_decision(
    counts: dict, num_matrices: int, matrix_rows: int, matrix_cols: int, n: int
) -> TestResult:
    """Decision math of the rank test from the integer rank histogram.

    Shared by the scalar reference and the batched packed-word kernel
    (:func:`repro.engine.heavy.batch_rank`), so both produce bit-identical
    floating-point results from identical integer counts.
    """
    bits_per_matrix = matrix_rows * matrix_cols
    p_full, p_minus1, p_rest = rank_probabilities(matrix_rows, matrix_cols)
    expected = np.array([p_full, p_minus1, p_rest]) * num_matrices
    observed = np.array([counts["full"], counts["full_minus_1"], counts["rest"]], dtype=np.float64)
    chi_squared = float(np.sum((observed - expected) ** 2 / expected))
    p_value = igamc(1.0, chi_squared / 2.0)
    return TestResult(
        name="Binary Matrix Rank Test",
        statistic=chi_squared,
        p_value=p_value,
        details={
            "n": n,
            "matrix_rows": matrix_rows,
            "matrix_cols": matrix_cols,
            "num_matrices": num_matrices,
            "discarded_bits": n - num_matrices * bits_per_matrix,
            "counts": dict(counts),
            "probabilities": (p_full, p_minus1, p_rest),
        },
    )


def binary_matrix_rank_test(bits: BitsLike, matrix_rows: int = 32, matrix_cols: int = 32) -> TestResult:
    """Run the binary matrix rank test.

    Parameters
    ----------
    bits:
        The bit sequence under test; NIST recommends at least 38 matrices
        worth of bits (38,912 bits for 32x32 matrices).
    matrix_rows, matrix_cols:
        Matrix dimensions M and Q (default 32x32).

    Returns
    -------
    TestResult
        ``details`` contains the rank histogram over the three categories.
    """
    arr = to_bits(bits)
    n = arr.size
    bits_per_matrix = matrix_rows * matrix_cols
    num_matrices = n // bits_per_matrix
    if num_matrices == 0:
        raise ValueError(
            f"sequence too short: need at least {bits_per_matrix} bits, got {n}"
        )
    full_rank = min(matrix_rows, matrix_cols)
    counts = {"full": 0, "full_minus_1": 0, "rest": 0}
    for i in range(num_matrices):
        block = arr[i * bits_per_matrix : (i + 1) * bits_per_matrix]
        matrix = block.reshape(matrix_rows, matrix_cols)
        rank = binary_matrix_rank(matrix)
        if rank == full_rank:
            counts["full"] += 1
        elif rank == full_rank - 1:
            counts["full_minus_1"] += 1
        else:
            counts["rest"] += 1
    return rank_decision(counts, num_matrices, matrix_rows, matrix_cols, n)
