"""NIST test 10: The Linear Complexity Test.

Determines whether the sequence is complex enough to be considered random by
computing the linear complexity (via Berlekamp–Massey) of fixed-length
blocks.  Classified as unsuitable for compact hardware by the paper
(Table I) — Berlekamp–Massey needs O(M) storage and O(M²) operations.
"""

from __future__ import annotations

import numpy as np

from repro.nist.common import BitsLike, TestResult, berlekamp_massey, igamc, to_bits

__all__ = [
    "linear_complexity_test",
    "linear_complexity_decision",
    "LINEAR_COMPLEXITY_PI",
]

#: Category probabilities π_0..π_6 from SP 800-22 section 3.10.
LINEAR_COMPLEXITY_PI = [0.010417, 0.03125, 0.125, 0.5, 0.25, 0.0625, 0.020833]

#: The T-value category edges of section 3.10, binned with
#: ``np.digitize(..., right=True)`` — identical to the spec's elif chain
#: (t <= -2.5 -> 0, ..., t > 2.5 -> 6).
_T_EDGES = np.array([-2.5, -1.5, -0.5, 0.5, 1.5, 2.5])


def linear_complexity_decision(
    complexities, block_length: int, num_blocks: int, n: int
) -> TestResult:
    """Decision math of the linear complexity test from the per-block L's.

    Shared by the scalar reference and the bit-sliced batched kernel
    (:func:`repro.engine.heavy.batch_linear_complexity`): identical integer
    complexities give bit-identical results.
    """
    mean = (
        block_length / 2.0
        + (9.0 + (-1.0) ** (block_length + 1)) / 36.0
        - (block_length / 3.0 + 2.0 / 9.0) / 2.0 ** block_length
    )
    complexity_arr = np.asarray(complexities, dtype=np.int64)
    t = (-1.0) ** block_length * (complexity_arr - mean) + 2.0 / 9.0
    categories = np.bincount(np.digitize(t, _T_EDGES, right=True), minlength=7)
    expected = num_blocks * np.array(LINEAR_COMPLEXITY_PI)
    chi_squared = float(np.sum((categories - expected) ** 2 / expected))
    p_value = igamc(3.0, chi_squared / 2.0)
    return TestResult(
        name="Linear Complexity Test",
        statistic=chi_squared,
        p_value=p_value,
        details={
            "n": n,
            "block_length": block_length,
            "num_blocks": num_blocks,
            "mean": mean,
            "categories": categories.tolist(),
            "complexities": [int(L) for L in complexity_arr],
        },
    )


def linear_complexity_test(bits: BitsLike, block_length: int = 500) -> TestResult:
    """Run the linear complexity test.

    Parameters
    ----------
    bits:
        The bit sequence under test; NIST recommends at least 10^6 bits, with
        at least 200 blocks.
    block_length:
        Block length M (NIST: 500 <= M <= 5000).

    Returns
    -------
    TestResult
        ``details`` contains the T-value category histogram.
    """
    arr = to_bits(bits)
    n = arr.size
    if block_length < 4:
        raise ValueError("block_length must be at least 4")
    num_blocks = n // block_length
    if num_blocks == 0:
        raise ValueError("sequence shorter than a single block")
    complexities = [
        berlekamp_massey(arr[i * block_length : (i + 1) * block_length])
        for i in range(num_blocks)
    ]
    return linear_complexity_decision(complexities, block_length, num_blocks, n)
