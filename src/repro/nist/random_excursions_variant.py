"""NIST test 15: The Random Excursions Variant Test.

Counts the total number of times each of the eighteen states
x in {-9..-1, 1..9} is visited by the cumulative-sum random walk and compares
the counts with their expectation.  Classified as unsuitable for compact
hardware by the paper (Table I).
"""

from __future__ import annotations

import math

import numpy as np

from repro.nist.common import BitsLike, TestResult, erfc, to_bits

__all__ = ["random_excursions_variant_test", "VARIANT_STATES"]

#: The eighteen states examined by the test.
VARIANT_STATES = tuple(x for x in range(-9, 10) if x != 0)


def random_excursions_variant_test(bits: BitsLike) -> TestResult:
    """Run the random excursions variant test.

    Returns
    -------
    TestResult
        Eighteen P-values, one per state; ``details`` contains the number of
        cycles J and the per-state total visit counts.
    """
    arr = to_bits(bits)
    n = arr.size
    if n == 0:
        raise ValueError("random excursions variant test requires a non-empty sequence")
    walk = np.concatenate([[0], np.cumsum(2 * arr.astype(np.int64) - 1), [0]])
    # J = number of zero crossings after the initial position.
    j = int(np.count_nonzero(walk[1:] == 0))
    if j == 0:
        raise ValueError("random walk produced no cycles")
    p_values = []
    counts = {}
    for x in VARIANT_STATES:
        count = int(np.count_nonzero(walk == x))
        counts[x] = count
        denom = math.sqrt(2.0 * j * (4.0 * abs(x) - 2.0))
        p_values.append(erfc(abs(count - j) / denom))
    return TestResult(
        name="Random Excursions Variant Test",
        statistic=float(j),
        p_value=min(p_values),
        p_values=p_values,
        details={
            "n": n,
            "num_cycles": j,
            "j_below_recommendation": j < 500,
            "states": list(VARIANT_STATES),
            "counts": counts,
        },
    )
