"""NIST test 15: The Random Excursions Variant Test.

Counts the total number of times each of the eighteen states
x in {-9..-1, 1..9} is visited by the cumulative-sum random walk and compares
the counts with their expectation.  Classified as unsuitable for compact
hardware by the paper (Table I).
"""

from __future__ import annotations

import math

import numpy as np

from repro.nist.common import BitsLike, TestResult, erfc, to_bits

__all__ = ["random_excursions_variant_test", "variant_decision", "VARIANT_STATES"]

#: The eighteen states examined by the test.
VARIANT_STATES = tuple(x for x in range(-9, 10) if x != 0)


def variant_decision(counts: dict, j: int, n: int) -> TestResult:
    """Decision math of the variant test from the per-state visit counts.

    Shared by the scalar reference and the batched kernel
    (:func:`repro.engine.heavy.batch_random_excursions_variant`): identical
    integer counts give bit-identical results.
    """
    p_values = []
    for x in VARIANT_STATES:
        count = counts[x]
        denom = math.sqrt(2.0 * j * (4.0 * abs(x) - 2.0))
        p_values.append(erfc(abs(count - j) / denom))
    return TestResult(
        name="Random Excursions Variant Test",
        statistic=float(j),
        p_value=min(p_values),
        p_values=p_values,
        details={
            "n": n,
            "num_cycles": j,
            "j_below_recommendation": j < 500,
            "states": list(VARIANT_STATES),
            "counts": {x: int(counts[x]) for x in VARIANT_STATES},
        },
    )


def random_excursions_variant_test(bits: BitsLike) -> TestResult:
    """Run the random excursions variant test.

    Returns
    -------
    TestResult
        Eighteen P-values, one per state; ``details`` contains the number of
        cycles J and the per-state total visit counts.
    """
    arr = to_bits(bits)
    n = arr.size
    if n == 0:
        raise ValueError("random excursions variant test requires a non-empty sequence")
    walk = np.concatenate([[0], np.cumsum(2 * arr.astype(np.int64) - 1), [0]])
    # J = number of zero crossings after the initial position.
    j = int(np.count_nonzero(walk[1:] == 0))
    if j == 0:
        raise ValueError("random walk produced no cycles")
    counts = {x: int(np.count_nonzero(walk == x)) for x in VARIANT_STATES}
    return variant_decision(counts, j, n)
