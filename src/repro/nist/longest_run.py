"""NIST test 4: Test for the Longest Run of Ones in a Block.

Splits the sequence into blocks of ``M`` bits, records the longest run of
ones in each block, buckets the blocks into categories and compares the
category frequencies against the theoretical probabilities with a χ² test.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.nist.common import BitsLike, TestResult, chunk, igamc, to_bits

__all__ = [
    "longest_run_test",
    "longest_run_test_from_context",
    "longest_run_of_ones",
    "LONGEST_RUN_TABLES",
    "category_index",
]

#: NIST-tabulated parameters: block length M -> (K, category v-values, pi).
#: Categories: a block whose longest run of ones is <= v[0] falls in class 0,
#: == v[i] in class i for interior classes, >= v[K] in class K.
LONGEST_RUN_TABLES: Dict[int, Tuple[int, List[int], List[float]]] = {
    8: (3, [1, 2, 3, 4], [0.2148, 0.3672, 0.2305, 0.1875]),
    128: (5, [4, 5, 6, 7, 8, 9], [0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124]),
    512: (5, [6, 7, 8, 9, 10, 11], [0.1170, 0.2460, 0.2523, 0.1755, 0.1027, 0.1124]),
    1000: (5, [7, 8, 9, 10, 11, 12], [0.1307, 0.2437, 0.2452, 0.1714, 0.1002, 0.1088]),
    10000: (6, [10, 11, 12, 13, 14, 15, 16], [0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727]),
}


def longest_run_of_ones(bits: BitsLike) -> int:
    """Length of the longest run of consecutive ones in the sequence."""
    arr = to_bits(bits)
    longest = 0
    current = 0
    for bit in arr:
        if bit:
            current += 1
            if current > longest:
                longest = current
        else:
            current = 0
    return longest


def category_index(longest: int, v_values: Sequence[int]) -> int:
    """Map a longest-run value to its category index for the χ² statistic."""
    if longest <= v_values[0]:
        return 0
    if longest >= v_values[-1]:
        return len(v_values) - 1
    return int(longest - v_values[0])


def recommended_block_length(n: int) -> int:
    """NIST-recommended block length for a sequence of ``n`` bits.

    The paper constrains block lengths to the tabulated values that are
    powers of two (8, 128, 512); this helper follows the NIST minimum-length
    recommendation and is used as the default by :func:`longest_run_test`.
    """
    if n < 128:
        raise ValueError("longest-run test requires at least 128 bits")
    if n < 6272:
        return 8
    if n < 750000:
        return 128
    return 10000


def longest_run_test(bits: BitsLike, block_length: int | None = None) -> TestResult:
    """Run the longest-run-of-ones-in-a-block test.

    Parameters
    ----------
    bits:
        The bit sequence under test (at least 128 bits).
    block_length:
        Block length ``M``; must be one of the NIST-tabulated values
        (8, 128, 512, 1000, 10000).  Defaults to the NIST recommendation for
        the sequence length.

    Returns
    -------
    TestResult
        ``details`` contains the per-category block counts (the ν_runs,i of
        Table II) and the theoretical probabilities π_i.
    """
    arr = to_bits(bits)
    n = arr.size
    if block_length is None:
        block_length = recommended_block_length(n)
    _validate_block_length(n, block_length)
    blocks = chunk(arr, block_length)
    k, v_values, _pi = LONGEST_RUN_TABLES[block_length]
    categories = np.zeros(k + 1, dtype=np.int64)
    for block in blocks:
        categories[category_index(longest_run_of_ones(block), v_values)] += 1
    return _longest_run_result(n, block_length, categories)


def _validate_block_length(n: int, block_length: int) -> None:
    if block_length not in LONGEST_RUN_TABLES:
        raise ValueError(
            f"block_length must be one of {sorted(LONGEST_RUN_TABLES)}, got {block_length}"
        )
    if block_length > n:
        raise ValueError(f"block_length M={block_length} exceeds sequence length n={n}")


def _longest_run_result(n: int, block_length: int, categories: np.ndarray) -> TestResult:
    """Decision math shared by the direct and context-aware entry points."""
    k, v_values, pi = LONGEST_RUN_TABLES[block_length]
    num_blocks = int(categories.sum())
    expected = num_blocks * np.array(pi)
    chi_squared = float(np.sum((categories - expected) ** 2 / expected))
    p_value = igamc(k / 2.0, chi_squared / 2.0)
    return TestResult(
        name="Longest Run of Ones in a Block",
        statistic=chi_squared,
        p_value=p_value,
        details={
            "n": n,
            "block_length": block_length,
            "num_blocks": num_blocks,
            "k": k,
            "v_values": list(v_values),
            "categories": categories.tolist(),
            "pi": list(pi),
        },
    )


def longest_run_test_from_context(context, block_length: int | None = None) -> TestResult:
    """Context-aware entry point: per-block longest runs of ones come from
    the shared context's vectorised block scan.

    The NIST category boundaries v_0..v_K are consecutive integers for every
    tabulated block length, so the category of a block is simply its longest
    run clipped into ``[v_0, v_K]`` minus ``v_0``.
    """
    n = context.n
    if block_length is None:
        block_length = recommended_block_length(n)
    _validate_block_length(n, block_length)
    k, v_values, _pi = LONGEST_RUN_TABLES[block_length]
    per_block = context.block_longest_one_runs(block_length)
    indices = np.clip(per_block - v_values[0], 0, k)
    categories = np.bincount(indices, minlength=k + 1).astype(np.int64)
    return _longest_run_result(n, block_length, categories)
