"""Driver that runs a configurable subset of the NIST SP 800-22 suite.

The suite is parameterised so it can be run both in its standard (PRNG
evaluation) configuration and in the reduced, hardware-friendly
configurations used by the paper's design points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.nist.approximate_entropy import approximate_entropy_test
from repro.nist.block_frequency import block_frequency_test
from repro.nist.common import BitsLike, TestResult, to_bits
from repro.nist.cusum import cumulative_sums_test
from repro.nist.dft import dft_test
from repro.nist.frequency import frequency_test
from repro.nist.linear_complexity import linear_complexity_test
from repro.nist.longest_run import longest_run_test
from repro.nist.nonoverlapping import non_overlapping_template_test
from repro.nist.overlapping import overlapping_template_test
from repro.nist.random_excursions import random_excursions_test
from repro.nist.random_excursions_variant import random_excursions_variant_test
from repro.nist.rank import binary_matrix_rank_test
from repro.nist.runs import runs_test
from repro.nist.serial import serial_test
from repro.nist.universal import universal_test

__all__ = ["NIST_TEST_NAMES", "NistSuite", "SuiteReport", "run_all_tests"]

#: NIST test numbering (Table I of the paper) -> canonical test name.
NIST_TEST_NAMES: Dict[int, str] = {
    1: "Frequency (Monobit) Test",
    2: "Frequency Test within a Block",
    3: "Runs Test",
    4: "Longest Run of Ones in a Block",
    5: "Binary Matrix Rank Test",
    6: "Discrete Fourier Transform (Spectral) Test",
    7: "Non-overlapping Template Matching Test",
    8: "Overlapping Template Matching Test",
    9: "Maurer's Universal Statistical Test",
    10: "Linear Complexity Test",
    11: "Serial Test",
    12: "Approximate Entropy Test",
    13: "Cumulative Sums Test",
    14: "Random Excursions Test",
    15: "Random Excursions Variant Test",
}

#: Tests the paper selects for HW/SW co-design (the "Yes" rows of Table I).
HW_SUITABLE_TESTS = (1, 2, 3, 4, 7, 8, 11, 12, 13)


@dataclass
class SuiteReport:
    """Aggregated result of a suite run."""

    n: int
    results: Dict[int, TestResult] = field(default_factory=dict)
    errors: Dict[int, str] = field(default_factory=dict)

    def passed(self, alpha: float = 0.01) -> bool:
        """True when every test that ran accepted the randomness hypothesis."""
        return all(result.passed(alpha) for result in self.results.values())

    def failing_tests(self, alpha: float = 0.01) -> List[int]:
        """Numbers of tests that rejected the randomness hypothesis."""
        return [num for num, result in self.results.items() if not result.passed(alpha)]

    def p_values(self) -> Dict[int, float]:
        """Primary P-value per executed test."""
        return {num: result.p_value for num, result in self.results.items()}

    def summary_rows(self, alpha: float = 0.01) -> List[Dict[str, object]]:
        """Tabular summary convenient for printing/reporting."""
        rows = []
        for num in sorted(self.results):
            result = self.results[num]
            rows.append(
                {
                    "test": num,
                    "name": result.name,
                    "p_value": result.min_p_value,
                    "passed": result.passed(alpha),
                }
            )
        for num in sorted(self.errors):
            rows.append(
                {
                    "test": num,
                    "name": NIST_TEST_NAMES[num],
                    "p_value": None,
                    "passed": None,
                    "error": self.errors[num],
                }
            )
        return rows


class NistSuite:
    """Configurable runner over the 15 reference NIST tests.

    Parameters
    ----------
    tests:
        Test numbers (1..15) to run; defaults to all 15.
    parameters:
        Optional per-test keyword arguments, keyed by test number, e.g.
        ``{2: {"block_length": 1024}, 11: {"m": 4}}``.
    skip_errors:
        When True (default) a test that raises ``ValueError`` (for instance
        because the sequence is too short) is recorded in
        :attr:`SuiteReport.errors` instead of aborting the whole run.
    """

    def __init__(
        self,
        tests: Optional[Sequence[int]] = None,
        parameters: Optional[Dict[int, Dict[str, object]]] = None,
        skip_errors: bool = True,
    ):
        requested = tuple(tests) if tests is not None else tuple(range(1, 16))
        unknown = [t for t in requested if t not in NIST_TEST_NAMES]
        if unknown:
            raise ValueError(f"unknown test numbers: {unknown}")
        self.tests = requested
        self.parameters = dict(parameters or {})
        self.skip_errors = skip_errors

    # -- dispatch ----------------------------------------------------------
    def _runner(self, number: int) -> Callable[..., TestResult]:
        dispatch = {
            1: frequency_test,
            2: block_frequency_test,
            3: runs_test,
            4: longest_run_test,
            5: binary_matrix_rank_test,
            6: dft_test,
            7: non_overlapping_template_test,
            8: overlapping_template_test,
            9: universal_test,
            10: linear_complexity_test,
            11: serial_test,
            12: approximate_entropy_test,
            13: cumulative_sums_test,
            14: random_excursions_test,
            15: random_excursions_variant_test,
        }
        return dispatch[number]

    def run(self, bits: BitsLike) -> SuiteReport:
        """Run the configured tests on ``bits`` and return a report."""
        arr = to_bits(bits)
        report = SuiteReport(n=int(arr.size))
        for number in self.tests:
            runner = self._runner(number)
            kwargs = self.parameters.get(number, {})
            try:
                report.results[number] = runner(arr, **kwargs)
            except ValueError as exc:
                if not self.skip_errors:
                    raise
                report.errors[number] = str(exc)
        return report


def run_all_tests(
    bits: BitsLike,
    tests: Optional[Sequence[int]] = None,
    parameters: Optional[Dict[int, Dict[str, object]]] = None,
) -> SuiteReport:
    """Convenience wrapper: run (a subset of) the suite with one call."""
    return NistSuite(tests=tests, parameters=parameters).run(bits)
