"""Driver that runs a configurable subset of the NIST SP 800-22 suite.

The suite is parameterised so it can be run both in its standard (PRNG
evaluation) configuration and in the reduced, hardware-friendly
configurations used by the paper's design points.

Since the unified batch engine refactor the suite no longer dispatches to
the per-test reference functions through a hard-coded dict: tests are
resolved from the engine's :data:`~repro.engine.registry.DEFAULT_REGISTRY`
and evaluated on a shared :class:`~repro.engine.context.SequenceContext`,
so tests that need the same sub-statistic (ones count, pattern counters,
window values, block sums) compute it once — the software analogue of the
paper's shared hardware counters.  :meth:`NistSuite.run_batch` extends the
sharing across the sequence axis of a whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.nist.common import BitsLike, TestResult, to_bits

__all__ = ["NIST_TEST_NAMES", "NistSuite", "SuiteReport", "run_all_tests"]

#: NIST test numbering (Table I of the paper) -> canonical test name.
NIST_TEST_NAMES: Dict[int, str] = {
    1: "Frequency (Monobit) Test",
    2: "Frequency Test within a Block",
    3: "Runs Test",
    4: "Longest Run of Ones in a Block",
    5: "Binary Matrix Rank Test",
    6: "Discrete Fourier Transform (Spectral) Test",
    7: "Non-overlapping Template Matching Test",
    8: "Overlapping Template Matching Test",
    9: "Maurer's Universal Statistical Test",
    10: "Linear Complexity Test",
    11: "Serial Test",
    12: "Approximate Entropy Test",
    13: "Cumulative Sums Test",
    14: "Random Excursions Test",
    15: "Random Excursions Variant Test",
}

#: Tests the paper selects for HW/SW co-design (the "Yes" rows of Table I).
HW_SUITABLE_TESTS = (1, 2, 3, 4, 7, 8, 11, 12, 13)


@dataclass
class SuiteReport:
    """Aggregated result of a suite run."""

    n: int
    results: Dict[int, TestResult] = field(default_factory=dict)
    errors: Dict[int, str] = field(default_factory=dict)

    def passed(self, alpha: float = 0.01) -> bool:
        """True when every test that ran accepted the randomness hypothesis."""
        return all(result.passed(alpha) for result in self.results.values())

    def failing_tests(self, alpha: float = 0.01) -> List[int]:
        """Numbers of tests that rejected the randomness hypothesis."""
        return [num for num, result in self.results.items() if not result.passed(alpha)]

    def p_values(self) -> Dict[int, float]:
        """Primary P-value per executed test."""
        return {num: result.p_value for num, result in self.results.items()}

    def summary_rows(self, alpha: float = 0.01) -> List[Dict[str, object]]:
        """Tabular summary convenient for printing/reporting."""
        rows = []
        for num in sorted(self.results):
            result = self.results[num]
            rows.append(
                {
                    "test": num,
                    "name": result.name,
                    "p_value": result.min_p_value,
                    "passed": result.passed(alpha),
                }
            )
        for num in sorted(self.errors):
            rows.append(
                {
                    "test": num,
                    "name": NIST_TEST_NAMES[num],
                    "p_value": None,
                    "passed": None,
                    "error": self.errors[num],
                }
            )
        return rows


class NistSuite:
    """Configurable runner over the 15 reference NIST tests.

    Parameters
    ----------
    tests:
        Test numbers (1..15) to run; defaults to all 15.
    parameters:
        Optional per-test keyword arguments, keyed by test number, e.g.
        ``{2: {"block_length": 1024}, 11: {"m": 4}}``.
    skip_errors:
        When True (default) a test that raises ``ValueError`` (for instance
        because the sequence is too short) is recorded in
        :attr:`SuiteReport.errors` instead of aborting the whole run.
    """

    def __init__(
        self,
        tests: Optional[Sequence[int]] = None,
        parameters: Optional[Dict[int, Dict[str, object]]] = None,
        skip_errors: bool = True,
    ):
        requested = tuple(tests) if tests is not None else tuple(range(1, 16))
        unknown = [t for t in requested if t not in NIST_TEST_NAMES]
        if unknown:
            raise ValueError(f"unknown test numbers: {unknown}")
        self.tests = requested
        self.parameters = dict(parameters or {})
        self.skip_errors = skip_errors

    def run(self, bits: BitsLike) -> SuiteReport:
        """Run the configured tests on ``bits`` and return a report.

        ``bits`` may also be a pre-built
        :class:`~repro.engine.context.SequenceContext`, in which case its
        memoized statistics are reused across this run.
        """
        # Imported here (not at module level): the engine registry imports
        # this module for the canonical test names.
        from repro.engine.context import SequenceContext
        from repro.engine.registry import DEFAULT_REGISTRY

        if isinstance(bits, SequenceContext):
            context = bits
        else:
            context = SequenceContext(to_bits(bits))
        report = SuiteReport(n=context.n)
        for number in self.tests:
            test = DEFAULT_REGISTRY.resolve(number)
            kwargs = self.parameters.get(number, {})
            try:
                report.results[number] = test.run(context, **kwargs)
            except ValueError as exc:
                if not self.skip_errors:
                    raise
                report.errors[number] = str(exc)
        return report

    def run_batch(
        self, sequences, processes: Optional[int] = None
    ) -> List[SuiteReport]:
        """Run the configured tests over a batch of sequences.

        Cheap tests are vectorised across the sequence axis through a shared
        :class:`~repro.engine.context.BatchContext`; with ``processes > 1``
        the expensive tests fan out over a process pool.  Returns one
        :class:`SuiteReport` per input sequence, with results bit-identical
        to calling :meth:`run` on each sequence individually.
        """
        from repro.engine.batch import run_batch
        from repro.engine.registry import NIST_NUMBER_TO_ID

        engine_reports = run_batch(
            sequences,
            tests=list(self.tests),
            parameters=self.parameters,
            processes=processes,
            skip_errors=self.skip_errors,
        )
        reports: List[SuiteReport] = []
        for engine_report in engine_reports:
            report = SuiteReport(n=engine_report.n)
            for number in self.tests:
                test_id = NIST_NUMBER_TO_ID[number]
                if test_id in engine_report.results:
                    report.results[number] = engine_report.results[test_id]
                elif test_id in engine_report.errors:
                    report.errors[number] = engine_report.errors[test_id]
            reports.append(report)
        return reports


def run_all_tests(
    bits: BitsLike,
    tests: Optional[Sequence[int]] = None,
    parameters: Optional[Dict[int, Dict[str, object]]] = None,
) -> SuiteReport:
    """Convenience wrapper: run (a subset of) the suite with one call."""
    return NistSuite(tests=tests, parameters=parameters).run(bits)
