"""NIST test 12: The Approximate Entropy Test.

Compares the frequencies of overlapping ``m``-bit and ``(m+1)``-bit patterns;
for a random sequence the approximate entropy ApEn(m) is close to ln 2.  The
paper shares the hardware pattern counters with the serial test (its "unified
implementation" trick) since both tests need the same cyclic 3-/4-bit pattern
counts.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nist.common import BitsLike, TestResult, igamc, pattern_counts, phi_from_counts, to_bits

__all__ = ["approximate_entropy_test", "approximate_entropy_test_from_context", "phi_statistic"]


def phi_statistic(bits: BitsLike, m: int) -> float:
    """NIST's φ^(m) = Σ_i (ν_i / n) · ln(ν_i / n) over cyclic m-bit patterns.

    φ^(0) is defined as 0 when m == 0 would make every window identical; the
    NIST spec only ever evaluates φ for m >= 1, plus the convention
    φ^(0) = −ln 2 is not needed here because the test uses m >= 1.
    """
    arr = to_bits(bits)
    n = arr.size
    if m == 0:
        return 0.0
    return phi_from_counts(pattern_counts(arr, m, cyclic=True), n)


def _apen_result(n: int, m: int, counts_m: np.ndarray, counts_m1: np.ndarray) -> TestResult:
    """Decision math shared by the direct and context-aware entry points."""
    phi_m = phi_from_counts(counts_m, n)
    phi_m1 = phi_from_counts(counts_m1, n)
    apen = phi_m - phi_m1
    chi_squared = 2.0 * n * (math.log(2.0) - apen)
    # Numerical guard: for strongly non-random inputs ApEn can marginally
    # exceed ln 2 due to floating point, making chi_squared slightly negative.
    chi_squared = max(chi_squared, 0.0)
    p_value = igamc(2 ** (m - 1), chi_squared / 2.0)
    return TestResult(
        name="Approximate Entropy Test",
        statistic=chi_squared,
        p_value=p_value,
        details={
            "n": n,
            "m": m,
            "phi_m": phi_m,
            "phi_m1": phi_m1,
            "apen": apen,
            "counts_m": counts_m.tolist(),
            "counts_m1": counts_m1.tolist(),
        },
    )


def approximate_entropy_test(bits: BitsLike, m: int = 3) -> TestResult:
    """Run the approximate entropy test with block length ``m``.

    Parameters
    ----------
    bits:
        The bit sequence under test.
    m:
        Block length; the paper uses m = 3 so that the needed 3-bit and 4-bit
        pattern counts coincide with the serial test's counters (Table II).

    Returns
    -------
    TestResult
        ``details`` contains φ^(m), φ^(m+1), ApEn and the χ² statistic.
    """
    arr = to_bits(bits)
    n = arr.size
    if m < 1:
        raise ValueError("approximate entropy test requires m >= 1")
    if n < m + 2:
        raise ValueError(f"sequence too short (n={n}) for block length m={m}")
    return _apen_result(
        n,
        m,
        pattern_counts(arr, m, cyclic=True),
        pattern_counts(arr, m + 1, cyclic=True),
    )


def approximate_entropy_test_from_context(context, m: int = 3) -> TestResult:
    """Context-aware entry point: reads the shared cyclic pattern counters
    (the same ones the serial test uses — the paper's unified counters)."""
    n = context.n
    if m < 1:
        raise ValueError("approximate entropy test requires m >= 1")
    if n < m + 2:
        raise ValueError(f"sequence too short (n={n}) for block length m={m}")
    return _apen_result(
        n,
        m,
        context.pattern_counts(m, cyclic=True),
        context.pattern_counts(m + 1, cyclic=True),
    )
