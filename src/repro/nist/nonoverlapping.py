"""NIST test 7: The Non-overlapping Template Matching Test.

Counts non-overlapping occurrences of an ``m``-bit aperiodic template within
each of ``N`` blocks and compares the counts against their theoretical mean
and variance with a χ² statistic.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.nist.common import BitsLike, TestResult, bits_from_int, bits_to_int, igamc, to_bits

__all__ = [
    "non_overlapping_template_test",
    "non_overlapping_template_test_from_context",
    "count_non_overlapping",
    "aperiodic_templates",
    "DEFAULT_TEMPLATE_9",
]

#: Default 9-bit template used throughout the library (000000001), matching
#: the first aperiodic template of length 9 in the NIST template list.
DEFAULT_TEMPLATE_9: tuple = (0, 0, 0, 0, 0, 0, 0, 0, 1)


def _is_aperiodic(template: Sequence[int]) -> bool:
    """A template is aperiodic when no proper shift of it matches itself."""
    m = len(template)
    for shift in range(1, m):
        if all(template[i] == template[i + shift] for i in range(m - shift)):
            return False
    return True


def aperiodic_templates(m: int) -> List[tuple]:
    """Enumerate all aperiodic (non-periodic) templates of length ``m``.

    These are the templates NIST uses for the non-overlapping template test.
    The enumeration is exhaustive over all 2^m patterns, so it is only meant
    for small ``m`` (the test uses m = 9 or 10).
    """
    if m <= 0:
        raise ValueError("template length must be positive")
    result = []
    for value in range(1 << m):
        template = tuple(int(b) for b in bits_from_int(value, m))
        if _is_aperiodic(template):
            result.append(template)
    return result


def count_non_overlapping(block: BitsLike, template: Sequence[int]) -> int:
    """Count non-overlapping occurrences of ``template`` in ``block``.

    The search window advances by one position after a mismatch and jumps by
    the template length ``m`` after a match (the NIST scanning rule, and what
    the hardware's shared shift register implements for this test).
    """
    arr = to_bits(block)
    tmpl = np.asarray(template, dtype=np.uint8)
    m = tmpl.size
    count = 0
    i = 0
    limit = arr.size - m
    while i <= limit:
        if np.array_equal(arr[i : i + m], tmpl):
            count += 1
            i += m
        else:
            i += 1
    return count


def non_overlapping_template_test(
    bits: BitsLike,
    template: Sequence[int] = DEFAULT_TEMPLATE_9,
    num_blocks: int = 8,
) -> TestResult:
    """Run the non-overlapping template matching test.

    Parameters
    ----------
    bits:
        The bit sequence under test.
    template:
        The aperiodic template B (default: the 9-bit ``000000001``).
    num_blocks:
        Number of blocks ``N`` the sequence is split into (NIST recommends
        ``N = 8``); the block length is ``M = n // N``.

    Returns
    -------
    TestResult
        ``details`` contains the per-block counts (the W_i of Table II) and
        the theoretical mean/variance.
    """
    arr = to_bits(bits)
    template, block_length = _validate(arr.size, template, num_blocks)
    counts = []
    for i in range(num_blocks):
        block = arr[i * block_length : (i + 1) * block_length]
        counts.append(count_non_overlapping(block, template))
    return _non_overlapping_result(arr.size, template, num_blocks, block_length, counts)


def non_overlapping_template_test_from_context(
    context,
    template: Sequence[int] = DEFAULT_TEMPLATE_9,
    num_blocks: int = 8,
) -> TestResult:
    """Context-aware entry point.

    For an aperiodic template — the only kind NIST uses — no two occurrences
    can overlap, so the greedy non-overlapping count equals the plain number
    of matching windows; those are read off the shared ``m``-bit window
    values (also used by the overlapping test and pattern counters).
    Periodic templates fall back to the reference greedy scan.
    """
    n = context.n
    template, block_length = _validate(n, template, num_blocks)
    m = len(template)
    if _is_aperiodic(template):
        values = context.window_values(m)
        target = bits_to_int(template)
        windows_per_block = block_length - m + 1
        counts = [
            int(np.count_nonzero(values[i * block_length : i * block_length + windows_per_block] == target))
            for i in range(num_blocks)
        ]
    else:
        counts = [
            count_non_overlapping(
                context.bits[i * block_length : (i + 1) * block_length], template
            )
            for i in range(num_blocks)
        ]
    return _non_overlapping_result(n, template, num_blocks, block_length, counts)


def _validate(n: int, template: Sequence[int], num_blocks: int):
    template = tuple(int(b) for b in template)
    m = len(template)
    if m <= 1:
        raise ValueError("template must be at least 2 bits long")
    if num_blocks <= 0:
        raise ValueError("num_blocks must be positive")
    block_length = n // num_blocks
    if block_length < m:
        raise ValueError(
            f"block length M={block_length} is shorter than the template (m={m})"
        )
    return template, block_length


def _non_overlapping_result(
    n: int, template: tuple, num_blocks: int, block_length: int, counts: List[int]
) -> TestResult:
    """Decision math shared by the direct and context-aware entry points."""
    m = len(template)
    counts_arr = np.array(counts, dtype=np.float64)
    mean = (block_length - m + 1) / (1 << m)
    variance = block_length * (1.0 / (1 << m) - (2.0 * m - 1.0) / (1 << (2 * m)))
    if variance <= 0:
        raise ValueError("non-positive theoretical variance; block too short")
    chi_squared = float(np.sum((counts_arr - mean) ** 2 / variance))
    p_value = igamc(num_blocks / 2.0, chi_squared / 2.0)
    return TestResult(
        name="Non-overlapping Template Matching Test",
        statistic=chi_squared,
        p_value=p_value,
        details={
            "n": n,
            "template": template,
            "template_length": m,
            "num_blocks": num_blocks,
            "block_length": block_length,
            "counts": counts,
            "mean": mean,
            "variance": variance,
        },
    )
