"""Shared utilities for the reference NIST SP 800-22 implementations.

The helpers in this module are used by the individual test modules and by
other parts of the library (the hardware model uses :func:`to_bits` for its
input streams, the software routines use :func:`igamc` indirectly through the
precomputed critical values).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np
from scipy import special as _special

__all__ = [
    "BitsLike",
    "BitSequence",
    "TestResult",
    "to_bits",
    "pack_bits",
    "unpack_bits",
    "bits_from_bytes",
    "bits_from_int",
    "bits_to_int",
    "igamc",
    "erfc",
    "normal_cdf",
    "pattern_counts",
    "phi_from_counts",
    "psi_squared",
    "psi_squared_from_counts",
    "berlekamp_massey",
    "binary_matrix_rank",
    "chunk",
]

#: Types accepted wherever a bit sequence is expected.
BitsLike = Union["BitSequence", Sequence[int], np.ndarray, str, bytes, bytearray]


def to_bits(bits: BitsLike) -> np.ndarray:
    """Normalise any supported bit-sequence representation to a uint8 array.

    Accepted inputs:

    * a :class:`BitSequence`,
    * a numpy array or Python sequence of 0/1 integers (or booleans),
    * a string of ``'0'``/``'1'`` characters (whitespace ignored),
    * ``bytes``/``bytearray`` — unpacked MSB-first, 8 bits per byte.

    Raises
    ------
    ValueError
        If any element is not 0 or 1, or the input type is unsupported.
    """
    if isinstance(bits, BitSequence):
        return bits.bits
    if isinstance(bits, np.ndarray) and bits.dtype == np.uint8 and bits.ndim == 1:
        # Zero-copy fast path for source blocks: a 1-D uint8 array is the
        # native stream representation, so it is validated and passed
        # through as-is instead of round-tripping through int64.
        if bits.size and int(bits.max()) > 1:
            raise ValueError("bit sequence must contain only 0 and 1 values")
        return bits
    if isinstance(bits, str):
        cleaned = "".join(bits.split())
        if cleaned and set(cleaned) - {"0", "1"}:
            raise ValueError("bit string may only contain '0' and '1'")
        return np.frombuffer(cleaned.encode("ascii"), dtype=np.uint8) - ord("0")
    if isinstance(bits, (bytes, bytearray)):
        return bits_from_bytes(bits)
    arr = np.asarray(bits)
    if arr.dtype == bool:
        return arr.astype(np.uint8)
    arr = arr.astype(np.int64, copy=False)
    if arr.size and (arr.min() < 0 or arr.max() > 1):
        raise ValueError("bit sequence must contain only 0 and 1 values")
    return arr.astype(np.uint8)


# ---------------------------------------------------------------------------
# Byte-level packing (the single stream/file tail convention)
# ---------------------------------------------------------------------------
#
# Every byte-level bit container in the library — capture files, replayed
# logic-analyser dumps, MSB-first integers — goes through this one helper
# pair instead of hand-rolled ``np.packbits`` calls with divergent tail
# handling.  The convention: bits map to bytes MSB first, a trailing partial
# byte is zero-padded on the *right* (low bits), and an explicit ``count``
# recovers the exact stream on the way back.  (The engine's 64-bit compute
# words in :mod:`repro.engine.packed` deliberately use the opposite, little,
# bit order — that is a compute-kernel layout, not an interchange format.)

def pack_bits(bits: BitsLike) -> np.ndarray:
    """Pack a bit sequence into bytes, MSB of each byte first.

    A trailing partial byte is zero-padded on the right; keep the original
    bit count alongside the bytes (as :meth:`CaptureSource.save
    <repro.trng.capture.CaptureSource.save>` does) and hand it to
    :func:`unpack_bits` for an exact round-trip at any length.
    """
    arr = to_bits(bits)
    if arr.size == 0:
        return np.zeros(0, dtype=np.uint8)
    return np.packbits(arr)


def unpack_bits(data: Union[bytes, bytearray, np.ndarray], count: Optional[int] = None) -> np.ndarray:
    """Unpack MSB-first bytes into a uint8 bit array (inverse of :func:`pack_bits`).

    ``count`` keeps only the first ``count`` bits, dropping the zero-pad
    bits of a trailing partial byte; ``None`` keeps all 8 bits per byte.
    """
    raw = np.frombuffer(bytes(data), dtype=np.uint8) if not isinstance(data, np.ndarray) else data
    if count is not None and not 0 <= count <= raw.size * 8:
        raise ValueError(f"count must lie in 0..{raw.size * 8}, got {count}")
    return np.unpackbits(raw, count=count)


def bits_from_bytes(data: Union[bytes, bytearray]) -> np.ndarray:
    """Unpack a byte string into a bit array, MSB of each byte first."""
    return unpack_bits(data)


def bits_from_int(value: int, width: int) -> np.ndarray:
    """Return ``width`` bits of ``value``, most-significant bit first."""
    if value < 0:
        raise ValueError("value must be non-negative")
    if width <= 0:
        raise ValueError("width must be positive")
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    num_bytes = (width + 7) // 8
    # Integers pad on the *left* (high bits), so drop the leading pad bits
    # rather than unpacking with a right-tail count.
    raw = value.to_bytes(num_bytes, "big")
    return unpack_bits(raw)[num_bytes * 8 - width :].copy()


def bits_to_int(bits: BitsLike) -> int:
    """Interpret a bit sequence as an unsigned integer, MSB first."""
    arr = to_bits(bits)
    if arr.size == 0:
        return 0
    # pack_bits pads the final byte on the right with zeros, so the packed
    # integer is the wanted value shifted left by the pad width.
    value = int.from_bytes(pack_bits(arr).tobytes(), "big")
    return value >> ((-arr.size) % 8)


class BitSequence:
    """An immutable sequence of bits with convenience accessors.

    This is a thin wrapper around a numpy ``uint8`` array; it exists so that
    library users have a single obvious type to pass around, and so that
    common derived quantities (number of ones, ±1 mapping) are available
    without re-deriving them at every call site.
    """

    __slots__ = ("_bits", "_ones")

    def __init__(self, bits: BitsLike):
        arr = to_bits(bits)
        arr.setflags(write=False)
        self._bits = arr
        self._ones: Optional[int] = None

    # -- basic protocol ----------------------------------------------------
    def __len__(self) -> int:
        return int(self._bits.size)

    def __iter__(self):
        return iter(int(b) for b in self._bits)

    def __getitem__(self, index):
        result = self._bits[index]
        if isinstance(index, slice):
            return BitSequence(result)
        return int(result)

    def __eq__(self, other) -> bool:
        if isinstance(other, BitSequence):
            return np.array_equal(self._bits, other._bits)
        try:
            return np.array_equal(self._bits, to_bits(other))
        except (ValueError, TypeError):
            return NotImplemented

    def __hash__(self) -> int:
        return hash(self._bits.tobytes())

    def __repr__(self) -> str:
        preview = "".join(str(int(b)) for b in self._bits[:32])
        suffix = "..." if len(self) > 32 else ""
        return f"BitSequence(n={len(self)}, bits={preview}{suffix})"

    # -- accessors ---------------------------------------------------------
    @property
    def bits(self) -> np.ndarray:
        """The underlying read-only uint8 array of 0/1 values."""
        return self._bits

    @property
    def n(self) -> int:
        """Sequence length."""
        return int(self._bits.size)

    @property
    def ones(self) -> int:
        """Total number of ones in the sequence (computed once, then cached)."""
        if self._ones is None:
            self._ones = int(self._bits.sum())
        return self._ones

    @property
    def zeros(self) -> int:
        """Total number of zeros in the sequence."""
        return self.n - self.ones

    @property
    def proportion(self) -> float:
        """Fraction of ones."""
        if self.n == 0:
            return 0.0
        return self.ones / self.n

    def as_pm1(self) -> np.ndarray:
        """Map bits to ±1: ``1 -> +1`` and ``0 -> -1`` (NIST's 2ε-1)."""
        return 2 * self._bits.astype(np.int64) - 1

    def to01(self) -> str:
        """Return the sequence as a string of '0'/'1' characters."""
        return "".join(str(int(b)) for b in self._bits)

    def concat(self, other: BitsLike) -> "BitSequence":
        """Return a new sequence with ``other`` appended."""
        return BitSequence(np.concatenate([self._bits, to_bits(other)]))


@dataclass
class TestResult:
    """Outcome of a single statistical test.

    Attributes
    ----------
    name:
        Human-readable test name ("Frequency (Monobit) Test", ...).
    statistic:
        The primary decision statistic (test-specific; e.g. ``s_obs`` for the
        frequency test, χ² for the block-frequency test).
    p_value:
        The primary P-value.
    p_values:
        All P-values produced by the test (some NIST tests produce two or
        more, e.g. the serial and cumulative-sums tests).
    details:
        Test-specific intermediate values, useful for debugging and for the
        HW/SW equivalence checks.
    """

    #: Not a pytest test class, despite the name (prevents collection warnings).
    __test__ = False

    name: str
    statistic: float
    p_value: float
    p_values: List[float] = field(default_factory=list)
    details: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.p_values:
            self.p_values = [self.p_value]

    def passed(self, alpha: float = 0.01) -> bool:
        """Return True when the randomness hypothesis is accepted at ``alpha``.

        NIST's decision rule: the sequence passes a test when *every*
        P-value produced by the test is at least the level of significance.
        """
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must lie strictly between 0 and 1")
        return all(p >= alpha for p in self.p_values)

    @property
    def min_p_value(self) -> float:
        """The smallest P-value produced by the test (drives the decision)."""
        return min(self.p_values)


# ---------------------------------------------------------------------------
# Special functions
# ---------------------------------------------------------------------------

def igamc(a: float, x: float) -> float:
    """Complemented incomplete gamma function Q(a, x) as used by NIST."""
    if a <= 0:
        raise ValueError("shape parameter a must be positive")
    if x < 0:
        raise ValueError("x must be non-negative")
    return float(_special.gammaincc(a, x))


def erfc(x: float) -> float:
    """Complementary error function."""
    return float(_special.erfc(x))


def normal_cdf(x: float) -> float:
    """Standard normal cumulative distribution function Φ(x)."""
    return 0.5 * erfc(-x / math.sqrt(2.0))


# ---------------------------------------------------------------------------
# Pattern counting (serial / approximate entropy)
# ---------------------------------------------------------------------------

def pattern_counts(bits: BitsLike, m: int, *, cyclic: bool = True) -> np.ndarray:
    """Count occurrences of every overlapping ``m``-bit pattern.

    Parameters
    ----------
    bits:
        Input bit sequence of length ``n``.
    m:
        Pattern length; ``m == 0`` returns a single count equal to ``n``.
    cyclic:
        When True (the NIST convention for the serial and approximate-entropy
        tests) the sequence is extended by its own first ``m - 1`` bits so
        that exactly ``n`` windows are counted.

    Returns
    -------
    numpy.ndarray
        Array of length ``2**m``; entry ``i`` is the number of occurrences of
        the pattern whose MSB-first integer value is ``i``.
    """
    arr = to_bits(bits).astype(np.int64)
    n = arr.size
    if m < 0:
        raise ValueError("pattern length m must be non-negative")
    if m == 0:
        return np.array([n], dtype=np.int64)
    if n == 0:
        return np.zeros(1 << m, dtype=np.int64)
    if m > n:
        raise ValueError(f"pattern length m={m} exceeds sequence length n={n}")
    if cyclic:
        extended = np.concatenate([arr, arr[: m - 1]]) if m > 1 else arr
        num_windows = n
    else:
        extended = arr
        num_windows = n - m + 1
    weights = 1 << np.arange(m - 1, -1, -1)
    values = np.zeros(num_windows, dtype=np.int64)
    for offset in range(m):
        values += extended[offset : offset + num_windows] * weights[offset]
    return np.bincount(values, minlength=1 << m).astype(np.int64)


def psi_squared_from_counts(counts: np.ndarray, n: int) -> float:
    """ψ²_m from precomputed cyclic pattern counts (``len(counts) == 2^m``).

    Shared by the reference :func:`psi_squared` and the engine's
    context-aware serial test so both produce bit-identical values.
    """
    counts = np.asarray(counts)
    return float(len(counts) / n * np.sum(counts.astype(np.float64) ** 2) - n)


def phi_from_counts(counts: np.ndarray, n: int) -> float:
    """NIST's φ^(m) = Σ (ν_i/n)·ln(ν_i/n) from precomputed cyclic counts.

    Shared by the reference approximate-entropy test and the engine's
    context-aware entry point so both produce bit-identical values.
    """
    counts = np.asarray(counts).astype(np.float64)
    nonzero = counts[counts > 0]
    proportions = nonzero / n
    return float(np.sum(proportions * np.log(proportions)))


def psi_squared(bits: BitsLike, m: int) -> float:
    """NIST's ψ²_m statistic used by the serial test.

    ψ²_m = (2^m / n) Σ ν_i² − n, computed over the cyclically-extended
    sequence.  ψ²_0 and ψ²_{-1} are defined as 0.
    """
    arr = to_bits(bits)
    n = arr.size
    if m <= 0:
        return 0.0
    return psi_squared_from_counts(pattern_counts(arr, m, cyclic=True), n)


# ---------------------------------------------------------------------------
# Linear complexity (Berlekamp–Massey)
# ---------------------------------------------------------------------------

def berlekamp_massey(bits: BitsLike) -> int:
    """Return the linear complexity of a binary sequence.

    Standard Berlekamp–Massey over GF(2); the returned value is the length of
    the shortest LFSR that generates the sequence.
    """
    s = to_bits(bits).astype(np.uint8)
    n = s.size
    if n == 0:
        return 0
    c = np.zeros(n, dtype=np.uint8)
    b = np.zeros(n, dtype=np.uint8)
    c[0] = 1
    b[0] = 1
    L = 0
    m = -1
    for i in range(n):
        # discrepancy
        d = int(s[i])
        if L > 0:
            d ^= int(np.bitwise_and(c[1 : L + 1], s[i - L : i][::-1]).sum() & 1)
        if d == 1:
            t = c.copy()
            shift = i - m
            c[shift : n] ^= b[: n - shift]
            if 2 * L <= i:
                L = i + 1 - L
                m = i
                b = t
    return L


# ---------------------------------------------------------------------------
# Binary matrix rank over GF(2)
# ---------------------------------------------------------------------------

def binary_matrix_rank(matrix: np.ndarray) -> int:
    """Rank of a 0/1 matrix over GF(2) via Gaussian elimination."""
    m = np.array(matrix, dtype=np.uint8, copy=True)
    if m.ndim != 2:
        raise ValueError("matrix must be two-dimensional")
    rows, cols = m.shape
    rank = 0
    pivot_row = 0
    for col in range(cols):
        if pivot_row >= rows:
            break
        pivot = None
        for r in range(pivot_row, rows):
            if m[r, col]:
                pivot = r
                break
        if pivot is None:
            continue
        m[[pivot_row, pivot]] = m[[pivot, pivot_row]]
        for r in range(rows):
            if r != pivot_row and m[r, col]:
                m[r, :] ^= m[pivot_row, :]
        pivot_row += 1
        rank += 1
    return rank


# ---------------------------------------------------------------------------
# Misc helpers
# ---------------------------------------------------------------------------

def chunk(bits: BitsLike, block_length: int, *, discard_partial: bool = True) -> List[np.ndarray]:
    """Split a bit sequence into consecutive blocks of ``block_length`` bits.

    A trailing partial block is discarded when ``discard_partial`` is True
    (the NIST convention), otherwise it is returned as the final element.
    """
    arr = to_bits(bits)
    if block_length <= 0:
        raise ValueError("block_length must be positive")
    full = arr.size // block_length
    blocks = [arr[i * block_length : (i + 1) * block_length] for i in range(full)]
    if not discard_partial and arr.size % block_length:
        blocks.append(arr[full * block_length :])
    return blocks
