"""Committed baseline of accepted findings, with staleness enforcement.

A baseline entry grandfathers one *justified* finding: rule id, path, line,
the stripped source line it anchors to, and a written justification.  The
contract is deliberately strict so the baseline can never rot silently:

* every entry must carry a non-empty ``justification`` — an unjustified
  entry invalidates the whole baseline (exit code 2);
* an entry whose file is gone, whose line number is past the end of the
  file, or whose recorded snippet no longer matches that exact line is
  **stale** and fails the run (the referenced line no longer exists);
* an entry that matches its line but no longer matches any live finding is
  equally stale — the violation was fixed, so the baseline slot must go.

``--update-baseline`` rewrites the file from the current findings,
preserving justifications of surviving entries and inserting a
``TODO: justify`` placeholder (which itself fails validation) for new ones.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding

__all__ = ["BaselineEntry", "Baseline", "DEFAULT_BASELINE_PATH"]

#: Repository-root baseline file the CLI picks up by default.
DEFAULT_BASELINE_PATH = "analysis-baseline.json"

#: Placeholder ``--update-baseline`` writes for entries that still need a
#: human justification; validation rejects it so CI fails until it is
#: replaced with a real sentence.
TODO_JUSTIFICATION = "TODO: justify"


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    line: int
    snippet: str
    justification: str

    def key(self) -> Tuple[str, str, int, str]:
        return (self.rule, self.path, self.line, self.snippet)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "snippet": self.snippet,
            "justification": self.justification,
        }


class Baseline:
    """An ordered set of baseline entries plus matching/staleness logic."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()):
        self.entries: List[BaselineEntry] = list(entries)

    # ----------------------------------------------------------------- io
    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if not isinstance(data, dict) or not isinstance(data.get("findings"), list):
            raise ValueError(f"{path}: baseline must be an object with a 'findings' list")
        entries = []
        for raw in data["findings"]:
            if not isinstance(raw, dict):
                raise ValueError(f"{path}: baseline entries must be objects")
            try:
                entries.append(
                    BaselineEntry(
                        rule=str(raw["rule"]),
                        path=str(raw["path"]).replace(os.sep, "/"),
                        line=int(raw["line"]),
                        snippet=str(raw["snippet"]),
                        justification=str(raw.get("justification", "")),
                    )
                )
            except KeyError as exc:
                raise ValueError(f"{path}: baseline entry missing field {exc}")
        return cls(entries)

    def save(self, path: str) -> None:
        payload = {
            "version": 1,
            "comment": (
                "Accepted repro.analysis findings. Every entry needs a written "
                "justification; entries referencing lines that no longer exist "
                "fail the run."
            ),
            "findings": [entry.to_dict() for entry in self.entries],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")

    # ----------------------------------------------------------- validation
    def validation_errors(self) -> List[str]:
        """Structural problems independent of the tree (justifications)."""
        errors = []
        seen = set()
        for entry in self.entries:
            justification = entry.justification.strip()
            if not justification or justification == TODO_JUSTIFICATION:
                errors.append(
                    f"baseline entry {entry.rule} at {entry.path}:{entry.line} "
                    f"has no written justification"
                )
            if entry.key() in seen:
                errors.append(
                    f"duplicate baseline entry {entry.rule} at {entry.path}:{entry.line}"
                )
            seen.add(entry.key())
        return errors

    def staleness_errors(self) -> List[str]:
        """Entries whose referenced line no longer exists as recorded."""
        errors = []
        for entry in self.entries:
            if not os.path.isfile(entry.path):
                errors.append(
                    f"stale baseline entry {entry.rule}: file {entry.path} no longer exists"
                )
                continue
            with open(entry.path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
            if entry.line < 1 or entry.line > len(lines):
                errors.append(
                    f"stale baseline entry {entry.rule}: {entry.path} has "
                    f"{len(lines)} lines, entry references line {entry.line}"
                )
            elif lines[entry.line - 1].strip() != entry.snippet:
                errors.append(
                    f"stale baseline entry {entry.rule} at {entry.path}:{entry.line}: "
                    f"the line changed (expected {entry.snippet!r})"
                )
        return errors

    # ------------------------------------------------------------- matching
    def partition(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[str]]:
        """Split findings into (live, baselined) and report unmatched entries.

        A finding is baselined when an entry matches its rule, path, line
        and snippet exactly.  Entries left unmatched after the pass are
        stale (the finding they accepted no longer fires) and are returned
        as errors.
        """
        by_key: Dict[Tuple[str, str, int, str], BaselineEntry] = {
            entry.key(): entry for entry in self.entries
        }
        live: List[Finding] = []
        baselined: List[Finding] = []
        matched = set()
        for finding in findings:
            key = (finding.rule, finding.path, finding.line, finding.snippet)
            if key in by_key:
                matched.add(key)
                baselined.append(finding)
            else:
                live.append(finding)
        errors = [
            f"stale baseline entry {entry.rule} at {entry.path}:{entry.line}: "
            f"no current finding matches it (fixed? remove the entry)"
            for entry in self.entries
            if entry.key() not in matched
        ]
        return live, baselined, errors

    # --------------------------------------------------------------- update
    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], previous: Optional["Baseline"] = None
    ) -> "Baseline":
        """Build a fresh baseline, carrying surviving justifications over.

        Justifications are matched by (rule, path, snippet) so an entry
        whose line merely moved keeps its rationale; genuinely new entries
        get the ``TODO: justify`` placeholder that validation rejects.
        """
        carried: Dict[Tuple[str, str, str], str] = {}
        if previous is not None:
            for entry in previous.entries:
                carried[(entry.rule, entry.path, entry.snippet)] = entry.justification
        entries = [
            BaselineEntry(
                rule=finding.rule,
                path=finding.path,
                line=finding.line,
                snippet=finding.snippet,
                justification=carried.get(
                    (finding.rule, finding.path, finding.snippet), TODO_JUSTIFICATION
                ),
            )
            for finding in sorted(findings, key=Finding.sort_key)
        ]
        return cls(entries)
