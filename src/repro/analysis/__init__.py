"""Project-native static analysis for the repro codebase.

An AST-based lint pass that machine-enforces the invariants no generic
tool knows about: explicit seeding of every random draw (determinism ↔
the golden-parity test suites), the ``np.uint64``/tail-mask conventions of
the packed word kernels (↔ cross-backend P-value parity), the lock
discipline of the fleet service tier (↔ the bounded-lock-hold e2e tests),
and the typed/picklable API surfaces the external tooling gates rely on.

Run it as ``python -m repro.analysis [paths...]`` or via the main CLI's
``lint`` sub-command.  Findings can be suppressed inline with
``# repro: ignore[RULE]`` or accepted — with a written justification —
in the committed ``analysis-baseline.json``.
"""

from repro.analysis.baseline import Baseline, BaselineEntry, DEFAULT_BASELINE_PATH
from repro.analysis.cli import main
from repro.analysis.findings import AnalysisReport, Finding, Severity
from repro.analysis.framework import (
    Checker,
    CheckerRegistry,
    DEFAULT_REGISTRY,
    FileContext,
    Rule,
    analyze_file,
    analyze_source,
    collect_files,
)

# Importing the checker package registers every shipped family.
import repro.analysis.checkers  # noqa: F401  isort: skip

__all__ = [
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "Checker",
    "CheckerRegistry",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_REGISTRY",
    "FileContext",
    "Finding",
    "Rule",
    "Severity",
    "analyze_file",
    "analyze_source",
    "collect_files",
    "main",
]
