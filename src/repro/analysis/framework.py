"""Checker framework: registry, per-file visitor pipeline, suppressions.

The pass is deliberately self-contained (``ast`` + stdlib only) so it can
run in CI before any third-party tooling is installed.  One
:class:`FileContext` is built per analysed file — parsed tree, source
lines, path-derived scope tags, inline suppressions — and every registered
:class:`Checker` visits the tree through it.  Checkers declare the
:class:`~repro.analysis.findings.Finding` rules they own as :class:`Rule`
descriptors, which is what ``--list-rules`` and the API-surface tests
enumerate.

Scope tags
----------
Rules opt into path scopes instead of hard-coding the repository layout:
``library`` (anything under ``src/repro`` or an importable ``repro/``
tree), ``engine`` / ``fleet`` / ``analysis`` (the respective subpackages),
``benchmarks`` / ``examples`` / ``tests`` (top-level directories).  A rule
with ``scopes=()`` applies everywhere.

Suppressions
------------
``# repro: ignore[RULE]`` (comma-separated rule ids allowed) on the line a
finding anchors to suppresses that finding; suppressed findings are still
counted and reported in the summary so silent drift stays visible.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

from repro.analysis.findings import Finding, Severity

__all__ = [
    "Rule",
    "Checker",
    "CheckerRegistry",
    "FileContext",
    "DEFAULT_REGISTRY",
    "classify_path",
    "scan_suppressions",
    "collect_files",
    "analyze_source",
    "analyze_file",
]

#: Inline suppression syntax: ``# repro: ignore[DET001]`` or
#: ``# repro: ignore[DET001, PKD002]``.
SUPPRESSION_RE = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class Rule:
    """One rule of the catalogue: id, family, severity, what it protects."""

    id: str
    family: str
    severity: Severity
    summary: str
    #: The repository invariant the rule machine-enforces (shown by
    #: ``--list-rules`` and documented in the README rule catalogue).
    invariant: str
    #: Path scopes the rule applies to; empty means every analysed file.
    scopes: Tuple[str, ...] = ()


def classify_path(path: str) -> Set[str]:
    """Scope tags of a file path (see module docstring)."""
    posix = path.replace(os.sep, "/")
    tags: Set[str] = set()
    if "src/repro/" in posix or posix.startswith("repro/"):
        tags.add("library")
    for subpackage in ("engine", "fleet", "analysis"):
        if f"repro/{subpackage}/" in posix:
            tags.add(subpackage)
    for top in ("benchmarks", "examples", "tests"):
        if f"{top}/" in posix or posix.startswith(f"{top}/"):
            tags.add(top)
    return tags


def scan_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map 1-based line number -> rule ids suppressed on that line."""
    suppressions: Dict[int, Set[str]] = {}
    for number, line in enumerate(lines, start=1):
        match = SUPPRESSION_RE.search(line)
        if match:
            rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
            if rules:
                suppressions[number] = rules
    return suppressions


class FileContext:
    """Everything a checker needs about the file under analysis."""

    def __init__(self, path: str, source: str):
        self.path = path.replace(os.sep, "/")
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tags: Set[str] = classify_path(self.path)
        self.suppressions: Dict[int, Set[str]] = scan_suppressions(self.lines)
        self.findings: List[Finding] = []
        self.suppressed: List[Finding] = []
        self._rules: Dict[str, Rule] = {}

    def in_scope(self, rule: Rule) -> bool:
        return not rule.scopes or bool(self.tags.intersection(rule.scopes))

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def add(self, rule: Rule, node: ast.AST, message: str) -> None:
        """Record one finding at ``node``, honouring scope and suppressions."""
        if not self.in_scope(rule):
            return
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1
        finding = Finding(
            rule=rule.id,
            severity=rule.severity,
            path=self.path,
            line=line,
            column=column,
            message=message,
            snippet=self.snippet(line),
        )
        if rule.id in self.suppressions.get(line, set()):
            self.suppressed.append(finding)
        else:
            self.findings.append(finding)


class Checker(ast.NodeVisitor):
    """Base class of one checker family member.

    Subclasses declare their :attr:`rules` and implement ``visit_*``
    methods; one fresh instance runs per analysed file.  ``self.rule(id)``
    resolves a declared rule for reporting through
    :meth:`FileContext.add`.
    """

    #: Rules this checker can emit; registered into the rule catalogue.
    rules: Tuple[Rule, ...] = ()

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self._by_id = {rule.id: rule for rule in self.rules}

    def rule(self, rule_id: str) -> Rule:
        return self._by_id[rule_id]

    def report(self, rule_id: str, node: ast.AST, message: str) -> None:
        self.ctx.add(self.rule(rule_id), node, message)

    def run(self, tree: ast.Module) -> None:
        self.visit(tree)


class CheckerRegistry:
    """The shipped checker set and its flat rule catalogue."""

    def __init__(self) -> None:
        self._checkers: List[Type[Checker]] = []

    def register(self, checker_cls: Type[Checker]) -> Type[Checker]:
        """Class decorator: add a checker (duplicate rule ids rejected)."""
        existing = {rule.id for rule in self.rules()}
        for rule in checker_cls.rules:
            if rule.id in existing:
                raise ValueError(f"duplicate rule id {rule.id!r}")
        self._checkers.append(checker_cls)
        return checker_cls

    def checkers(self) -> Tuple[Type[Checker], ...]:
        return tuple(self._checkers)

    def rules(self) -> Tuple[Rule, ...]:
        return tuple(rule for cls in self._checkers for rule in cls.rules)

    def families(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for rule in self.rules():
            if rule.family not in seen:
                seen.append(rule.family)
        return tuple(seen)


#: The process-wide registry the CLI and tests run against; importing
#: :mod:`repro.analysis.checkers` populates it.
DEFAULT_REGISTRY = CheckerRegistry()


def analyze_source(
    source: str,
    path: str,
    registry: Optional[CheckerRegistry] = None,
    select: Optional[Iterable[str]] = None,
) -> FileContext:
    """Run every registered checker over one source string.

    Raises :class:`SyntaxError` when the source does not parse — the
    caller decides whether that is fatal (CLI: exit 2).  ``select``
    restricts reporting to the given rule ids (used by fixture tests to
    isolate one family).
    """
    registry = registry if registry is not None else DEFAULT_REGISTRY
    ctx = FileContext(path, source)
    tree = ast.parse(source, filename=path)
    for checker_cls in registry.checkers():
        checker_cls(ctx).run(tree)
    if select is not None:
        wanted = set(select)
        ctx.findings = [f for f in ctx.findings if f.rule in wanted]
        ctx.suppressed = [f for f in ctx.suppressed if f.rule in wanted]
    ctx.findings.sort(key=Finding.sort_key)
    ctx.suppressed.sort(key=Finding.sort_key)
    return ctx


def analyze_file(
    path: str,
    registry: Optional[CheckerRegistry] = None,
    select: Optional[Iterable[str]] = None,
) -> FileContext:
    """Run the pass over one file on disk (UTF-8)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return analyze_source(source, path, registry=registry, select=select)


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand path arguments into a sorted, de-duplicated ``.py`` file list.

    Directories are walked recursively; hidden directories and
    ``__pycache__`` are skipped.  A named file is taken as-is (it must
    exist), so fixture tests can point the CLI at single snippets.
    """
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        elif os.path.isfile(path):
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path!r}")
    seen: Set[str] = set()
    unique: List[str] = []
    for path in files:
        normalised = os.path.normpath(path).replace(os.sep, "/")
        if normalised not in seen:
            seen.add(normalised)
            unique.append(normalised)
    return sorted(unique)
