"""Lock-discipline checkers for lock-owning classes (fleet service tier).

Classes that create a ``threading`` lock (``FleetScheduler``,
``FleetService``) promise two things the service e2e tests depend on:
shared mutable state is only written under the lock, and the lock is never
held across engine evaluation (a slow ``run_batch`` under the scheduler
lock would stall every concurrent service request — the bounded-lock-hold
behaviour pinned by ``tests/test_fleet_service.py``).  ROADMAP item 2
(shared-nothing service shards) multiplies this surface, so both rules are
machine-enforced here.
"""

from __future__ import annotations

import ast
import re
from typing import Optional, Set

from repro.analysis.checkers._common import dotted_name
from repro.analysis.framework import Checker, DEFAULT_REGISTRY, Rule
from repro.analysis.findings import Severity

__all__ = ["LockDisciplineChecker"]

#: threading constructors whose assignment marks a lock attribute.
_LOCK_CONSTRUCTORS = ("Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore")

#: A dotted alias counts as a lock when its final segment *is* a lock name
#: ("scheduler.lock", "parent._pool_lock") — NOT when "lock" is merely a
#: substring ("self.lock_strength" of the injection-locked oscillator).
_LOCK_ALIAS_RE = re.compile(r"(^|_)(lock|rlock|mutex)$")

#: Methods that mutate their receiver in place (writes for LCK001).
_MUTATORS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "sort", "reverse", "appendleft",
}

#: Callee names that run engine evaluation; calling them while holding a
#: lock violates the bounded-lock-hold contract (LCK002).
_EVAL_CALLEES = {
    "run_batch", "evaluate_matrix", "evaluate_batch", "evaluate_sequence",
    "evaluate_source", "run_campaign",
}

#: Methods whose writes are exempt: construction happens-before any
#: concurrent access.
_EXEMPT_METHODS = {"__init__", "__new__", "__init_subclass__"}


def _self_attribute(node: ast.AST) -> Optional[str]:
    """``X`` for an ``self.X`` expression, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _MethodWalker(ast.NodeVisitor):
    """Walk one method tracking ``with self.<lock>`` nesting depth."""

    def __init__(self, checker: "LockDisciplineChecker", method: ast.FunctionDef,
                 lock_attrs: Set[str]):
        self.checker = checker
        self.method = method
        self.lock_attrs = lock_attrs
        self.depth = 0
        self.exempt = method.name in _EXEMPT_METHODS

    # ----------------------------------------------------------- with locks
    def visit_With(self, node: ast.With) -> None:
        holds = 0
        for item in node.items:
            attr = _self_attribute(item.context_expr)
            if attr is not None and attr in self.lock_attrs:
                holds += 1
        self.depth += holds
        self.generic_visit(node)
        self.depth -= holds

    # ---------------------------------------------------------- write sites
    def _record_write(self, attr: Optional[str], node: ast.AST) -> None:
        if attr is None or attr in self.lock_attrs or self.exempt:
            return
        if self.depth == 0:
            self.checker.report(
                "LCK001",
                node,
                f"self.{attr} written outside 'with self.<lock>' in "
                f"lock-owning class {self.checker.current_class}.{self.method.name}(); "
                f"shared state must only mutate under the lock",
            )

    def _target_writes(self, target: ast.AST, node: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._target_writes(element, node)
        elif isinstance(target, ast.Starred):
            self._target_writes(target.value, node)
        elif isinstance(target, ast.Subscript):
            self._record_write(_self_attribute(target.value), node)
        else:
            self._record_write(_self_attribute(target), node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._target_writes(target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._target_writes(node.target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._target_writes(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._target_writes(target, node)
        self.generic_visit(node)

    # ----------------------------------------------------------- call sites
    def visit_Call(self, node: ast.Call) -> None:
        # Mutating method call on a self attribute counts as a write.
        if isinstance(node.func, ast.Attribute) and node.func.attr in _MUTATORS:
            self._record_write(_self_attribute(node.func.value), node)
        # Engine evaluation while holding a lock.
        if self.depth > 0:
            callee = dotted_name(node.func) or ""
            if callee.split(".")[-1] in _EVAL_CALLEES:
                self.checker.report(
                    "LCK002",
                    node,
                    f"{callee}() called while holding a lock in "
                    f"{self.checker.current_class}.{self.method.name}(); engine "
                    f"evaluation must run outside lock holds (bounded-lock "
                    f"contract of the fleet service)",
                )
        self.generic_visit(node)

    # Nested function/class definitions get their own discipline scope; do
    # not attribute their writes to the enclosing method's lock state.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is not self.method:
            return
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return


@DEFAULT_REGISTRY.register
class LockDisciplineChecker(Checker):
    rules = (
        Rule(
            id="LCK001",
            family="lock-discipline",
            severity=Severity.ERROR,
            summary="attribute of a lock-owning class written outside the lock",
            invariant="in a class that creates a threading lock, every attribute "
                      "write outside __init__ must sit inside a 'with self.<lock>' "
                      "block (service threads race the scheduler otherwise)",
        ),
        Rule(
            id="LCK002",
            family="lock-discipline",
            severity=Severity.ERROR,
            summary="engine evaluation called while holding a lock",
            invariant="run_batch/evaluate_* must not run under a held lock: lock "
                      "holds stay bounded so slow evaluations never stall "
                      "concurrent service requests (fleet service e2e contract)",
        ),
    )

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self.current_class = ""

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        lock_attrs = self._lock_attributes(node)
        if lock_attrs:
            previous = self.current_class
            self.current_class = node.name
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _MethodWalker(self, item, lock_attrs).visit(item)
            self.current_class = previous
        # Nested classes get their own scan either way.
        for item in node.body:
            if isinstance(item, ast.ClassDef):
                self.visit_ClassDef(item)

    @staticmethod
    def _lock_attributes(node: ast.ClassDef) -> Set[str]:
        """Attributes holding locks.

        A ``self.X = ...`` assignment marks ``X`` as a lock when the value
        is a ``threading`` lock constructor call, or a dotted expression
        whose final segment is itself a lock name (sharing another
        object's lock, e.g. ``self._lock = scheduler.lock``).  Name-based
        guessing on ``X`` alone is deliberately avoided: this TRNG domain
        has *injection-locked* oscillators whose ``lock_strength`` /
        ``locked`` attributes are physics, not threading.
        """
        lock_attrs: Set[str] = set()
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Assign):
                continue
            is_lock_value = False
            if isinstance(sub.value, ast.Call):
                callee = dotted_name(sub.value.func) or ""
                is_lock_value = callee.split(".")[-1] in _LOCK_CONSTRUCTORS
            elif isinstance(sub.value, ast.Attribute):
                is_lock_value = bool(_LOCK_ALIAS_RE.search(sub.value.attr.lower()))
            if not is_lock_value:
                continue
            for target in sub.targets:
                attr = _self_attribute(target)
                if attr is not None:
                    lock_attrs.add(attr)
        return lock_attrs
