"""Packed-kernel contract checkers (the uint64 word conventions of PR 5/6).

The packed backend's correctness hangs on three conventions documented in
:mod:`repro.engine.packed`: shift/mask amounts on uint64 word arrays are
wrapped in ``np.uint64`` (a raw Python int promotes uint64 operands to
float64 on the numpy versions CI spans), kernels account for the
zero-padded tail bits of the last word, and all uint8<->packed conversions
flow through the two sanctioned packing homes so there is exactly one bit
order in the repository.
"""

from __future__ import annotations

import ast
from typing import Optional, Set

from repro.analysis.checkers._common import dotted_name, is_int_literal
from repro.analysis.framework import Checker, DEFAULT_REGISTRY, Rule
from repro.analysis.findings import Severity

__all__ = ["PackedKernelChecker"]

#: Identifier fragments that mark an expression as a packed word array.
#: "ring" covers the streaming contexts' word rings (engine.streaming);
#: names containing "string" are excluded below — "ring" is a substring of
#: "string", and e.g. a bit-string formatter is not a word array.
_WORDY = ("word", "packed", "ring")

#: Fragments that veto a _WORDY match for the whole identifier.
_WORDY_EXCLUDE = ("string",)

#: Modules allowed to call np.packbits/np.unpackbits directly: the packing
#: convention's home (engine.packed), the byte-level codec it re-exports
#: (nist.common) and the heavy-test kernels that build bit-plane slabs
#: in-register (engine.heavy).
_SANCTIONED_PACKING = (
    "repro/engine/packed.py",
    "repro/engine/heavy.py",
    "repro/nist/common.py",
)

_BIT_OPS = (ast.LShift, ast.RShift, ast.BitAnd, ast.BitOr, ast.BitXor)


def _mentions_words(node: ast.AST) -> bool:
    """True when the expression tree references a word-array identifier."""
    for sub in ast.walk(node):
        name: Optional[str] = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None:
            lowered = name.lower()
            if any(fragment in lowered for fragment in _WORDY_EXCLUDE):
                continue
            if any(fragment in lowered for fragment in _WORDY):
                return True
    return False


@DEFAULT_REGISTRY.register
class PackedKernelChecker(Checker):
    rules = (
        Rule(
            id="PKD001",
            family="packed-kernel",
            severity=Severity.ERROR,
            summary="raw Python int in a uint64 word-array shift/mask",
            invariant="shift amounts and masks on packed word arrays must be "
                      "np.uint64(...)-wrapped; a bare int promotes uint64 operands "
                      "to float64 and silently corrupts the kernel",
        ),
        Rule(
            id="PKD002",
            family="packed-kernel",
            severity=Severity.WARNING,
            summary="packed kernel never consults the row bit length",
            invariant="kernels over PackedMatrix words must account for the "
                      "zero-padded tail bits of the last word (read .n / mask the "
                      "tail) or document why the zero-pad invariant suffices",
            scopes=("library",),
        ),
        Rule(
            id="PKD003",
            family="packed-kernel",
            severity=Severity.ERROR,
            summary="uint8<->packed conversion outside the packing homes",
            invariant="np.packbits/np.unpackbits live in repro.engine.packed / "
                      "repro.nist.common (one bit order repo-wide); call "
                      "pack_matrix/unpack_matrix/pack_bits/unpack_bits instead",
        ),
    )

    # ------------------------------------------------------------ PKD001
    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, _BIT_OPS):
            if isinstance(node.op, (ast.LShift, ast.RShift)):
                wordy = _mentions_words(node.left)
                raw = is_int_literal(node.right)
            else:
                wordy = _mentions_words(node.left) or _mentions_words(node.right)
                raw = is_int_literal(node.right) or is_int_literal(node.left)
            if wordy and raw:
                op_text = {
                    ast.LShift: "<<", ast.RShift: ">>", ast.BitAnd: "&",
                    ast.BitOr: "|", ast.BitXor: "^",
                }[type(node.op)]
                self.report(
                    "PKD001",
                    node,
                    f"raw Python int with '{op_text}' on a uint64 word array; wrap "
                    f"the scalar in np.uint64(...) to keep the dtype exact",
                )
        self.generic_visit(node)

    # ------------------------------------------------------------ PKD002
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_kernel_tail(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _packed_params(self, node: ast.FunctionDef) -> Set[str]:
        """Parameter names that carry a PackedMatrix (by annotation or name)."""
        params: Set[str] = set()
        for arg in list(node.args.posonlyargs) + list(node.args.args) + list(node.args.kwonlyargs):
            annotation = ""
            if arg.annotation is not None:
                annotation = ast.dump(arg.annotation)
            if arg.arg == "packed" or "PackedMatrix" in annotation:
                params.add(arg.arg)
        return params

    def _check_kernel_tail(self, node: ast.FunctionDef) -> None:
        params = self._packed_params(node)
        if not params:
            return
        reads_words = False
        consults_length = False
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute) and isinstance(sub.value, ast.Name):
                if sub.value.id in params:
                    if sub.attr == "words":
                        reads_words = True
                    elif sub.attr in ("n", "num_rows", "unpack"):
                        if sub.attr == "n":
                            consults_length = True
            if isinstance(sub, ast.Call):
                callee = dotted_name(sub.func) or ""
                tail = callee.split(".")[-1]
                # Delegating to another kernel/helper hands off the tail
                # handling; supports_* guards and unpack helpers count too.
                if tail.startswith("supports_") or tail in ("unpack", "unpack_rows", "unpack_matrix"):
                    consults_length = True
        if reads_words and not consults_length:
            self.report(
                "PKD002",
                node,
                f"kernel {node.name}() reads packed words but never consults the "
                f"bit length (.n); tail bits of the last word need masking (or a "
                f"comment + suppression citing the zero-pad invariant)",
            )

    # ------------------------------------------------------------ PKD003
    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func) or ""
        tail = name.split(".")[-1]
        if tail in ("packbits", "unpackbits") and name.split(".")[0] in ("np", "numpy"):
            if not self.ctx.path.endswith(_SANCTIONED_PACKING):
                self.report(
                    "PKD003",
                    node,
                    f"np.{tail} called outside the packing homes "
                    f"(repro.engine.packed / repro.nist.common); use "
                    f"pack_matrix/unpack_matrix or pack_bits/unpack_bits so the "
                    f"repository keeps one bit order",
                )
        self.generic_visit(node)
