"""The shipped checker families; importing this module registers them all."""

from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.hygiene import ApiHygieneChecker
from repro.analysis.checkers.locks import LockDisciplineChecker
from repro.analysis.checkers.observability import ObservabilityChecker
from repro.analysis.checkers.packed import PackedKernelChecker
from repro.analysis.checkers.robustness import RobustnessChecker

__all__ = [
    "DeterminismChecker",
    "PackedKernelChecker",
    "LockDisciplineChecker",
    "ApiHygieneChecker",
    "ObservabilityChecker",
    "RobustnessChecker",
]
