"""Observability checker: one wall clock, owned by :mod:`repro.obs`.

PR 9 threaded spans and metrics through every hot layer, and the design
hinges on a single timing substrate: a module that times itself with a
private ``time.perf_counter()`` pair produces latency numbers that can
silently disagree with the span tree and the ``/metrics`` histograms right
next to them.  The rule mirrors PKD003's "packing homes" idea for the wall
clock — :mod:`repro.obs` is the sanctioned home (see the DET004 exemption
in :mod:`repro.analysis.checkers.determinism`), and the instrumented layers
must time through ``obs.span(...)`` / ``obs.trace(...)``, whose
``duration_s`` is free to read afterwards.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers._common import dotted_name
from repro.analysis.framework import Checker, DEFAULT_REGISTRY, Rule
from repro.analysis.findings import Severity

__all__ = ["ObservabilityChecker"]

#: Clock reads whose *timing* use the rule polices.  Wall-clock entropy
#: (time.time etc.) is additionally DET004's business; perf_counter and
#: monotonic are pure timing and only this rule's.
_CLOCK_CALLS = (
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.time",
    "time.time_ns",
)

#: The instrumented layers: everywhere repro.obs spans/metrics are wired
#: through.  Uninstrumented library corners (trng sources, eval models)
#: stay free to time ad hoc until they grow instrumentation.
_INSTRUMENTED_PREFIXES = (
    "repro/engine/",
    "repro/fleet/",
    "repro/campaign/",
)
_INSTRUMENTED_FILES = ("repro/cli.py",)

#: The sanctioned wall-clock home itself (tracing reads the clock here).
_TIMING_HOME = "repro/obs/"


@DEFAULT_REGISTRY.register
class ObservabilityChecker(Checker):
    rules = (
        Rule(
            id="OBS001",
            family="observability",
            severity=Severity.ERROR,
            summary="direct clock read in an instrumented module",
            invariant="the instrumented layers (engine, fleet, campaign, cli) time "
                      "stages through repro.obs spans — one wall-clock home — so "
                      "reported latencies and traces can never disagree; read "
                      "span.duration_s instead of calling time.perf_counter()",
            scopes=("library",),
        ),
    )

    def _instrumented(self) -> bool:
        path = self.ctx.path
        if _TIMING_HOME in path:
            return False
        if path.endswith(_INSTRUMENTED_FILES):
            return True
        return any(prefix in path for prefix in _INSTRUMENTED_PREFIXES)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name in _CLOCK_CALLS and self._instrumented():
            self.report(
                "OBS001",
                node,
                f"{name}() read directly in an instrumented module; open an "
                f"obs.span(...) around the stage (its .duration_s is the same "
                f"clock) so the timing agrees with the trace tree and metrics",
            )
        self.generic_visit(node)
