"""API-hygiene checkers: annotations, CLI help drift, pool picklability.

These guard the seams other tooling relies on: the mypy configuration is
only as strong as the annotations it sees (API001 keeps the engine/fleet/
analysis surfaces fully typed), ``--help`` text is the CLI's contract with
its users (API002 keeps literal choice lists and help in sync), and pool
payloads must survive pickling (API003 rejects lambdas/closures handed to
executor fan-out — they fail only at runtime, deep inside a worker).
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.checkers._common import dotted_name
from repro.analysis.framework import Checker, DEFAULT_REGISTRY, Rule
from repro.analysis.findings import Severity

__all__ = ["ApiHygieneChecker"]

#: Executor fan-out methods whose callables cross a pickle boundary.
_POOL_DISPATCH = {"submit", "map", "apply_async", "imap", "imap_unordered", "starmap"}


@DEFAULT_REGISTRY.register
class ApiHygieneChecker(Checker):
    rules = (
        Rule(
            id="API001",
            family="api-hygiene",
            severity=Severity.ERROR,
            summary="public function missing type annotations",
            invariant="the engine/fleet/analysis surfaces stay fully annotated so "
                      "the strict mypy gate actually checks them",
            scopes=("engine", "fleet", "analysis"),
        ),
        Rule(
            id="API002",
            family="api-hygiene",
            severity=Severity.ERROR,
            summary="CLI help text drifts from the registered choices",
            invariant="every literal choices= value must be named in the flag's "
                      "help string — --help is the CLI contract",
        ),
        Rule(
            id="API003",
            family="api-hygiene",
            severity=Severity.ERROR,
            summary="unpicklable callable handed to executor fan-out",
            invariant="pool payloads must be module-level callables; lambdas and "
                      "nested closures fail to pickle only at runtime inside a "
                      "worker process",
        ),
    )

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._class_stack: List[ast.ClassDef] = []
        self._function_depth = 0

    # ------------------------------------------------------------ API001
    def _check_annotations(self, node: ast.FunctionDef) -> None:
        if node.name.startswith("_"):
            return  # private helpers and dunders are mypy's problem, not ours
        if self._function_depth:
            return  # nested functions are implementation detail
        if any(cls.name.startswith("_") for cls in self._class_stack):
            return  # private class: not part of the typed surface
        for decorator in node.decorator_list:
            if (dotted_name(decorator) or "").split(".")[-1] == "overload":
                return
        missing: List[str] = []
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        if self._class_stack and positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        for arg in positional + list(args.kwonlyargs):
            if arg.annotation is None:
                missing.append(arg.arg)
        unannotated_return = node.returns is None
        if missing or unannotated_return:
            parts = []
            if missing:
                parts.append("parameter(s) " + ", ".join(missing))
            if unannotated_return:
                parts.append("the return type")
            self.report(
                "API001",
                node,
                f"public function {node.name}() is missing annotations for "
                f"{' and '.join(parts)}; the strict mypy gate skips what is "
                f"not annotated",
            )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_annotations(node)
        self._nested_defs_guard(node)
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node)
        self.generic_visit(node)
        self._class_stack.pop()

    # ------------------------------------------------------------ API002
    @staticmethod
    def _literal_strings(node: ast.AST) -> List[str]:
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            values = []
            for element in node.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    values.append(element.value)
                else:
                    return []
            return values
        return []

    def _check_help_drift(self, node: ast.Call) -> None:
        if not (isinstance(node.func, ast.Attribute) and node.func.attr == "add_argument"):
            return
        choices: List[str] = []
        help_text = None
        for keyword in node.keywords:
            if keyword.arg == "choices":
                choices = self._literal_strings(keyword.value)
            elif keyword.arg == "help" and isinstance(keyword.value, ast.Constant) \
                    and isinstance(keyword.value.value, str):
                help_text = keyword.value.value
        if not choices or help_text is None:
            return
        absent = [choice for choice in choices if choice not in help_text]
        if absent:
            self.report(
                "API002",
                node,
                f"help text never mentions registered choice(s) "
                f"{', '.join(repr(c) for c in absent)}; --help has drifted from "
                f"the accepted values",
            )

    # ------------------------------------------------------------ API003
    @staticmethod
    def _pool_dispatch_payloads(node: ast.Call) -> List[ast.AST]:
        """Arguments of a pool/executor fan-out call, else an empty list."""
        if not (isinstance(node.func, ast.Attribute) and node.func.attr in _POOL_DISPATCH):
            return []
        receiver = (dotted_name(node.func.value) or "").lower()
        if not ("pool" in receiver or "executor" in receiver):
            return []
        return list(node.args) + [kw.value for kw in node.keywords]

    def _nested_defs_guard(self, node: ast.FunctionDef) -> None:
        """Within one function, reject nested defs fed to executors."""
        nested: Set[str] = {
            sub.name
            for sub in ast.walk(node)
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not node
        }
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            for argument in self._pool_dispatch_payloads(sub):
                if isinstance(argument, ast.Name) and argument.id in nested:
                    self.report(
                        "API003",
                        argument,
                        f"nested function {argument.id}() handed to a process-pool "
                        f"dispatch; closures do not pickle — hoist it to module "
                        f"level",
                    )

    def visit_Call(self, node: ast.Call) -> None:
        self._check_help_drift(node)
        # Lambdas are unpicklable wherever the dispatch happens, so this
        # check runs at every call site (module level included).
        for argument in self._pool_dispatch_payloads(node):
            if isinstance(argument, ast.Lambda):
                self.report(
                    "API003",
                    argument,
                    "lambda handed to a process-pool dispatch; pool payloads "
                    "must be picklable module-level callables",
                )
        self.generic_visit(node)
