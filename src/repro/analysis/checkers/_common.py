"""Shared AST helpers for the checker families."""

from __future__ import annotations

import ast
from typing import Optional

__all__ = ["dotted_name", "is_int_literal"]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string for pure Name/Attribute chains, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_int_literal(node: ast.AST) -> bool:
    """True for a bare integer constant, including a unary ``-``/``~`` of one."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.Invert)):
        node = node.operand
    return isinstance(node, ast.Constant) and type(node.value) is int
