"""Robustness checker: persistence in the fleet goes through atomic writes.

The durability layer's whole contract is that a crash at any instruction
leaves readable state on disk.  That holds only because every persisted
file is written with the tmp + fsync + rename discipline of
:func:`repro.fleet.durability.atomic_write_bytes` — a bare
``open(path, "w")`` in the fleet tier can be killed mid-write and leave a
torn snapshot that recovery then chokes on.  ROB001 flags write-mode
``open()`` calls (and the ``Path.write_text``/``write_bytes`` shorthands)
in ``repro/fleet/`` outside the sanctioned home, mirroring OBS001's
"one wall-clock home" shape: :mod:`repro.fleet.durability` itself is
exempt (the atomic helper and the journal live there), and *append* mode
is exempt too — the write-ahead journal appends by design, and appends
don't truncate existing state.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers._common import dotted_name
from repro.analysis.framework import Checker, DEFAULT_REGISTRY, Rule
from repro.analysis.findings import Severity

__all__ = ["RobustnessChecker"]

#: The fleet tier the rule polices.
_FLEET_PREFIX = "repro/fleet/"

#: The sanctioned persistence home (atomic helpers + journal live here).
_DURABILITY_HOME = "repro/fleet/durability.py"

#: ``Path`` convenience writers that truncate in place just like
#: ``open(..., "w")`` does.
_PATH_WRITERS = ("write_text", "write_bytes")


def _write_mode(mode: str) -> bool:
    """True for modes that truncate or create: ``w``, ``x`` (append is
    crash-safe by construction — it never destroys the existing prefix)."""
    return ("w" in mode or "x" in mode) and "a" not in mode


class _OpenMode:
    """Extract the literal mode of an ``open()`` call, if statically known."""

    @staticmethod
    def of(node: ast.Call) -> str | None:
        if len(node.args) >= 2:
            mode = node.args[1]
        else:
            keywords = {kw.arg: kw.value for kw in node.keywords}
            if "mode" not in keywords:
                return "r"  # open() defaults to read
            mode = keywords["mode"]
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        return None  # dynamic mode: out of static reach


@DEFAULT_REGISTRY.register
class RobustnessChecker(Checker):
    rules = (
        Rule(
            id="ROB001",
            family="robustness",
            severity=Severity.ERROR,
            summary="non-atomic persistence write in the fleet tier",
            invariant="fleet state reaches disk only through the durability "
                      "layer's atomic tmp + fsync + rename discipline "
                      "(repro.fleet.durability.atomic_write_bytes/_json) or "
                      "its append-only journal, so a crash at any point "
                      "leaves a readable snapshot instead of a torn file",
            scopes=("fleet",),
        ),
    )

    def _policed(self) -> bool:
        path = self.ctx.path
        if _DURABILITY_HOME in path:
            return False
        return _FLEET_PREFIX in path

    def visit_Call(self, node: ast.Call) -> None:
        if self._policed():
            name = dotted_name(node.func)
            if name == "open":
                mode = _OpenMode.of(node)
                if mode is not None and _write_mode(mode):
                    self.report(
                        "ROB001",
                        node,
                        f"open(..., {mode!r}) truncates in place; a crash "
                        f"mid-write leaves a torn file — persist through "
                        f"repro.fleet.durability.atomic_write_bytes/_json "
                        f"(tmp + fsync + rename) instead",
                    )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _PATH_WRITERS
            ):
                self.report(
                    "ROB001",
                    node,
                    f".{node.func.attr}(...) truncates in place; a crash "
                    f"mid-write leaves a torn file — persist through "
                    f"repro.fleet.durability.atomic_write_bytes/_json "
                    f"(tmp + fsync + rename) instead",
                )
        self.generic_visit(node)
