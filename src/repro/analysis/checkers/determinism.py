"""Determinism checkers: every random draw must be explicitly seeded.

Bit-identical p-values are the repository's core contract (the golden
parity suites of ``tests/test_engine_parity.py`` and
``tests/test_trng_block_parity.py`` depend on them): any unseeded or
ambient randomness in the library would make experiment results
irreproducible across runs and across the split-invariant block streams of
PR 3.  These rules machine-enforce that contract.
"""

from __future__ import annotations

import ast

from repro.analysis.checkers._common import dotted_name
from repro.analysis.framework import Checker, DEFAULT_REGISTRY, Rule
from repro.analysis.findings import Severity

__all__ = ["DeterminismChecker"]

#: numpy bit-generator / seed-sequence constructors that also need a seed.
_SEEDED_CONSTRUCTORS = ("default_rng", "SeedSequence", "PCG64", "MT19937", "Philox", "SFC64")

#: The sanctioned wall-clock home (mirrors PKD003's packing homes): the
#: observability layer times spans and may read the wall clock; wall-clock
#: entropy names are exempt there.  OS-entropy names never are — telemetry
#: has no business drawing os.urandom/uuid4.
_WALLCLOCK_HOME = "repro/obs/"

#: Fully-qualified calls that draw entropy from the environment.
_ENTROPY_CALLS = {
    "time.time": "time.time() is wall-clock entropy",
    "time.time_ns": "time.time_ns() is wall-clock entropy",
    "datetime.now": "datetime.now() is wall-clock entropy",
    "datetime.utcnow": "datetime.utcnow() is wall-clock entropy",
    "datetime.today": "datetime.today() is wall-clock entropy",
    "datetime.datetime.now": "datetime.now() is wall-clock entropy",
    "datetime.datetime.utcnow": "datetime.utcnow() is wall-clock entropy",
    "datetime.date.today": "date.today() is wall-clock entropy",
    "os.urandom": "os.urandom() draws OS entropy",
    "uuid.uuid1": "uuid1() mixes in clock and host state",
    "uuid.uuid4": "uuid4() draws OS entropy",
}


@DEFAULT_REGISTRY.register
class DeterminismChecker(Checker):
    rules = (
        Rule(
            id="DET001",
            family="determinism",
            severity=Severity.ERROR,
            summary="RNG constructed without an explicit seed",
            invariant="every np.random.default_rng()/bit-generator call must pass "
                      "a seed (or SeedSequence) so runs are bit-reproducible",
        ),
        Rule(
            id="DET002",
            family="determinism",
            severity=Severity.ERROR,
            summary="legacy global np.random.* API used",
            invariant="draws go through per-experiment Generator objects, never the "
                      "shared global numpy RNG state (split-invariance of PR 3)",
        ),
        Rule(
            id="DET003",
            family="determinism",
            severity=Severity.ERROR,
            summary="stdlib random module imported",
            invariant="the stdlib random module's global state is untracked by the "
                      "seeding discipline; use seeded numpy Generators",
        ),
        Rule(
            id="DET004",
            family="determinism",
            severity=Severity.ERROR,
            summary="nondeterministic entropy source in library code",
            invariant="library results must not depend on wall clock, OS entropy or "
                      "host identity (time.perf_counter for *timing* is fine)",
            scopes=("library",),
        ),
        Rule(
            id="DET005",
            family="determinism",
            severity=Severity.WARNING,
            summary="builtin hash() is salted per process",
            invariant="str/bytes hash() values change between interpreter runs "
                      "(PYTHONHASHSEED), so hash-derived draws or orderings drift",
            scopes=("library",),
        ),
    )

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._function_stack: list = []

    # ------------------------------------------------------------- imports
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root == "random":
                self.report("DET003", node, "stdlib 'random' imported; use a seeded "
                                            "np.random.default_rng(seed) instead")
            if root == "secrets":
                self.report("DET004", node, "'secrets' draws OS entropy; library code "
                                            "must stay seed-deterministic")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".")[0]
        if root == "random":
            self.report("DET003", node, "stdlib 'random' imported; use a seeded "
                                        "np.random.default_rng(seed) instead")
        if root == "secrets":
            self.report("DET004", node, "'secrets' draws OS entropy; library code "
                                        "must stay seed-deterministic")
        self.generic_visit(node)

    # --------------------------------------------------------------- calls
    def _check_unseeded_constructor(self, node: ast.Call, name: str) -> None:
        tail = name.split(".")[-1]
        if tail not in _SEEDED_CONSTRUCTORS:
            return
        # A bare name must plausibly be the numpy one: either imported from
        # numpy.random (not tracked) or dotted through np/numpy.random.  We
        # flag the dotted forms and the well-known bare name 'default_rng'.
        if "." in name and not name.endswith(f"random.{tail}"):
            return
        seeded = False
        if node.args and not (
            isinstance(node.args[0], ast.Constant) and node.args[0].value is None
        ):
            seeded = True
        for keyword in node.keywords:
            if keyword.arg in ("seed", "entropy") and not (
                isinstance(keyword.value, ast.Constant) and keyword.value.value is None
            ):
                seeded = True
        if not seeded:
            self.report(
                "DET001",
                node,
                f"{tail}() constructed without an explicit seed; pass a seed or "
                f"spawned SeedSequence so every draw is reproducible",
            )

    def _check_legacy_numpy(self, node: ast.Call, name: str) -> None:
        parts = name.split(".")
        if len(parts) < 3 or parts[-2] != "random" or parts[0] not in ("np", "numpy"):
            return
        tail = parts[-1]
        if tail[0].islower() and tail != "default_rng":
            self.report(
                "DET002",
                node,
                f"legacy global np.random.{tail}() mutates shared RNG state; draw "
                f"from a seeded np.random.default_rng(seed) Generator",
            )

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None:
            self._check_unseeded_constructor(node, name)
            self._check_legacy_numpy(node, name)
            if name in _ENTROPY_CALLS and not self._wallclock_exempt(name):
                self.report(
                    "DET004",
                    node,
                    f"{_ENTROPY_CALLS[name]}; library results must derive from "
                    f"explicit seeds only",
                )
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "hash"
            and "__hash__" not in self._function_stack
        ):
            self.report(
                "DET005",
                node,
                "builtin hash() of str/bytes is salted per interpreter run "
                "(PYTHONHASHSEED); derive stable keys explicitly instead",
            )
        self.generic_visit(node)

    def _wallclock_exempt(self, name: str) -> bool:
        """Wall-clock names are sanctioned inside the repro.obs timing home."""
        if _WALLCLOCK_HOME not in self.ctx.path:
            return False
        return name.split(".")[0] in ("time", "datetime")

    # ----------------------------------------------------------- func stack
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]
