"""Finding and severity model of the project-native static-analysis pass.

A :class:`Finding` is one rule violation anchored to a source line; the
:class:`Severity` ordering decides which findings gate the CI exit code
(errors always, warnings only under ``--strict``).  Findings are plain
frozen dataclasses so reports serialise to JSON without custom encoders
and sort deterministically regardless of checker execution order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class Severity(enum.Enum):
    """Severity of a finding; only errors gate the exit code by default."""

    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return 1 if self is Severity.ERROR else 0


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    column: int
    message: str
    #: The stripped source line the finding anchors to — what baseline
    #: entries pin so a moved/edited line invalidates its baseline slot.
    snippet: str = ""

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.rule)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "snippet": self.snippet,
        }


@dataclass
class AnalysisReport:
    """The outcome of one analysis run over a file set."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    #: Baseline entries that no longer match the tree (stale) or are
    #: malformed; any entry here fails the run outright (exit code 2).
    baseline_errors: List[str] = field(default_factory=list)
    files_scanned: int = 0

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def exit_code(self, strict: bool = False) -> int:
        """0 clean, 1 gating findings, 2 broken/stale baseline."""
        if self.baseline_errors:
            return 2
        if self.errors():
            return 1
        if strict and self.warnings():
            return 1
        return 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "findings": [f.to_dict() for f in sorted(self.findings, key=Finding.sort_key)],
            "suppressed": [f.to_dict() for f in sorted(self.suppressed, key=Finding.sort_key)],
            "baselined": [f.to_dict() for f in sorted(self.baselined, key=Finding.sort_key)],
            "baseline_errors": list(self.baseline_errors),
            "summary": {
                "files_scanned": self.files_scanned,
                "errors": len(self.errors()),
                "warnings": len(self.warnings()),
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
            },
        }
