"""Command-line front-end of the static-analysis pass.

Runnable as ``python -m repro.analysis`` and as the ``lint`` sub-command of
the main ``repro-trng-test`` CLI (both share :func:`configure_parser`).
Exit codes are CI-friendly: 0 clean, 1 gating findings, 2 for unusable
input or a broken/stale baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence, TextIO

import repro.analysis.checkers  # noqa: F401  - registers the checker families
from repro.analysis.baseline import Baseline, DEFAULT_BASELINE_PATH, TODO_JUSTIFICATION
from repro.analysis.findings import AnalysisReport, Finding
from repro.analysis.framework import DEFAULT_REGISTRY, analyze_file, collect_files

__all__ = ["build_parser", "configure_parser", "run_from_args", "main"]

#: Default path set of the repository gate (CI runs exactly this).
DEFAULT_PATHS = ("src", "benchmarks", "examples")


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the analysis options to ``parser`` (shared with `lint`)."""
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help="files or directories to analyse (default: src benchmarks examples)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format on stdout: human-readable text or the json "
             "findings document (default: %(default)s)",
    )
    parser.add_argument(
        "--json-report", metavar="PATH", default=None,
        help="additionally write the json findings document to PATH "
             "(uploaded as the CI artifact)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help=f"baseline file of accepted findings (default: "
             f"{DEFAULT_BASELINE_PATH} when it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file (report the raw findings)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings, keeping "
             "existing justifications; new entries get a TODO placeholder "
             "that fails validation until a justification is written",
    )
    parser.add_argument(
        "--select", metavar="RULES", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="warnings gate the exit code too, not only errors",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue (id, family, severity, invariant) and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Project-native static analysis: determinism, packed-kernel "
                    "and lock-discipline invariants of the repro codebase",
    )
    configure_parser(parser)
    return parser


def _print_rules(out: TextIO) -> None:
    rules = DEFAULT_REGISTRY.rules()
    print(f"{len(rules)} rules in {len(DEFAULT_REGISTRY.families())} families "
          f"(suppress inline with '# repro: ignore[RULE]'):", file=out)
    for rule in rules:
        scopes = ",".join(rule.scopes) if rule.scopes else "all files"
        print(f"  {rule.id}  [{rule.family:<14}] {rule.severity.value:<7} "
              f"{rule.summary}  (scope: {scopes})", file=out)
        print(f"         protects: {rule.invariant}", file=out)


def _render_text(report: AnalysisReport, out: TextIO) -> None:
    for finding in sorted(report.findings, key=Finding.sort_key):
        print(f"{finding.location()}: {finding.rule} {finding.severity.value}: "
              f"{finding.message}", file=out)
    for error in report.baseline_errors:
        print(f"baseline: {error}", file=out)
    print(
        f"repro.analysis: {report.files_scanned} files, "
        f"{len(report.errors())} errors, {len(report.warnings())} warnings "
        f"({len(report.suppressed)} suppressed, {len(report.baselined)} baselined)",
        file=out,
    )


def run_from_args(args: argparse.Namespace, out: Optional[TextIO] = None) -> int:
    out = out or sys.stdout
    if args.list_rules:
        _print_rules(out)
        return 0
    select = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
        known = {rule.id for rule in DEFAULT_REGISTRY.rules()}
        unknown = [rule_id for rule_id in select if rule_id not in known]
        if unknown:
            print(f"error: unknown rule id(s): {', '.join(unknown)}", file=out)
            return 2
    try:
        files = collect_files(args.paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=out)
        return 2

    report = AnalysisReport(files_scanned=len(files))
    for path in files:
        try:
            ctx = analyze_file(path, select=select)
        except SyntaxError as exc:
            print(f"error: {path} does not parse: {exc}", file=out)
            return 2
        report.findings.extend(ctx.findings)
        report.suppressed.extend(ctx.suppressed)

    baseline, baseline_path = _load_baseline(args, out)
    if args.update_baseline:
        # A missing/irreparable baseline is fine here: update writes a
        # fresh file from the current findings.
        return _update_baseline(report, baseline, baseline_path, files, out)
    if baseline is None and args.baseline is not None and not args.no_baseline:
        return 2  # explicitly named baseline did not load

    if baseline is not None:
        scanned = set(files)
        relevant = Baseline([e for e in baseline.entries if e.path in scanned])
        report.baseline_errors.extend(baseline.validation_errors())
        report.baseline_errors.extend(relevant.staleness_errors())
        live, baselined, unmatched = relevant.partition(report.findings)
        report.findings = live
        report.baselined = baselined
        report.baseline_errors.extend(unmatched)

    if args.format == "json":
        json.dump(report.to_dict(), out, indent=2)
        out.write("\n")
    else:
        _render_text(report, out)
    if args.json_report:
        with open(args.json_report, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
    return report.exit_code(strict=args.strict)


def _load_baseline(args: argparse.Namespace, out: TextIO):
    """Resolve the (baseline, path) pair from the CLI flags."""
    if args.no_baseline:
        return None, None
    path = args.baseline
    if path is None:
        if not os.path.isfile(DEFAULT_BASELINE_PATH):
            return None, DEFAULT_BASELINE_PATH
        path = DEFAULT_BASELINE_PATH
    if not os.path.isfile(path) and args.update_baseline:
        return None, path  # first --update-baseline creates the file
    try:
        return Baseline.load(path), path
    except FileNotFoundError:
        print(f"error: baseline file not found: {path}", file=out)
        return None, None
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"error: invalid baseline file {path}: {exc}", file=out)
        return None, None


def _update_baseline(
    report: AnalysisReport,
    previous: Optional[Baseline],
    baseline_path: Optional[str],
    files: Sequence[str],
    out: TextIO,
) -> int:
    path = baseline_path or DEFAULT_BASELINE_PATH
    scanned = set(files)
    fresh = Baseline.from_findings(report.findings, previous=previous)
    if previous is not None:
        # Entries for files outside this run's path set are kept verbatim.
        fresh.entries.extend(e for e in previous.entries if e.path not in scanned)
        fresh.entries.sort(key=lambda e: (e.path, e.line, e.rule))
    fresh.save(path)
    todo = sum(1 for e in fresh.entries if e.justification == TODO_JUSTIFICATION)
    print(f"baseline written to {path}: {len(fresh.entries)} entries"
          + (f" ({todo} still need a written justification)" if todo else ""),
          file=out)
    return 0


def main(argv: Optional[List[str]] = None, out: Optional[TextIO] = None) -> int:
    args = build_parser().parse_args(argv)
    return run_from_args(args, out=out)
