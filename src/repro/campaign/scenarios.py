"""Threat-scenario catalogue for detection campaigns.

Section II-B's threat catalogue lives in three modules — total failures
(:mod:`repro.trng.failures`), active attacks (:mod:`repro.trng.attacks`) and
aging (:mod:`repro.trng.aging`) — plus the parametric weakness models
(biased / correlated sources).  Each was exercised ad hoc by examples and
benchmarks.  :class:`ScenarioCatalog` unifies them behind one registry of
:class:`ScenarioSpec` *builders*: a scenario is a factory producing a fresh,
seeded :class:`~repro.trng.source.EntropySource`, parameterised by the
design's sequence length so that staged attacks and aging trajectories scale
with the design point (an injection that starts "two sequences in" starts at
``2 * n`` bits regardless of n).

The existing :class:`~repro.trng.attacks.AttackScenario` dataclass (a label
bound to one concrete, stateful source) stays the per-run bridge:
``spec.scenario(seed, n)`` instantiates one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.trng.aging import AgingSource
from repro.trng.attacks import AttackScenario, EMInjectionAttack, FrequencyInjectionAttack
from repro.trng.biased import BiasedSource
from repro.trng.correlated import CorrelatedSource
from repro.trng.failures import AlternatingSource, BurstFailureSource, DeadSource, StuckAtSource
from repro.trng.ideal import IdealSource
from repro.trng.oscillator import RingOscillatorTRNG
from repro.trng.source import EntropySource

__all__ = [
    "ScenarioSpec",
    "ScenarioCatalog",
    "SCENARIO_CATEGORIES",
    "DEFAULT_CATALOG",
    "build_default_catalog",
]

#: The threat classes of Section II-B (plus the healthy controls every
#: campaign needs for its false-alarm baseline).
SCENARIO_CATEGORIES = ("healthy", "failure", "parametric", "attack", "aging")


@dataclass(frozen=True)
class ScenarioSpec:
    """One registered threat scenario: a seeded source factory.

    Attributes
    ----------
    label:
        Unique catalogue key (e.g. ``"wire-cut"``, ``"freq-injection-staged"``).
    category:
        One of :data:`SCENARIO_CATEGORIES`.
    builder:
        ``builder(seed, n) -> EntropySource`` producing a *fresh* source;
        ``n`` is the sequence length of the design under evaluation, so
        staged attacks and drift rates can scale with the design point.
    description:
        Human-readable threat description (shows up in campaign tables).
    expected_detectable:
        False for healthy controls — their failures are false alarms.
    """

    label: str
    category: str
    builder: Callable[[int, int], EntropySource]
    description: str = ""
    expected_detectable: bool = True

    def __post_init__(self):
        if self.category not in SCENARIO_CATEGORIES:
            raise ValueError(
                f"category must be one of {SCENARIO_CATEGORIES}, got {self.category!r}"
            )

    @property
    def is_control(self) -> bool:
        """True for healthy references whose alarms count as false alarms."""
        return not self.expected_detectable

    def build(self, seed: int, n: int) -> EntropySource:
        """A fresh source for one campaign trial."""
        return self.builder(seed, n)

    def build_matrix(self, seed: int, n: int, num_sequences: int) -> np.ndarray:
        """One trial's bit matrix: ``num_sequences`` consecutive n-bit
        sequences from a fresh source, as a ``(num_sequences, n)`` uint8
        array drawn block-natively
        (:meth:`~repro.trng.source.EntropySource.generate_matrix`).

        Rows are consecutive stretches of one stream, so staged attacks and
        aging trajectories unfold across the rows exactly as they do in a
        monitoring run.  This is the shape the engine's batch path consumes
        directly.
        """
        return self.build(seed, n).generate_matrix(num_sequences, n)

    def scenario(self, seed: int, n: int) -> AttackScenario:
        """Bridge to the legacy :class:`AttackScenario` (one bound source)."""
        return AttackScenario(
            label=self.label,
            source=self.build(seed, n),
            description=self.description,
            expected_detectable=self.expected_detectable,
        )


class ScenarioCatalog:
    """Registry of threat scenarios, keyed by label."""

    def __init__(self) -> None:
        self._specs: Dict[str, ScenarioSpec] = {}

    def register(self, spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
        """Add a scenario; labels must not collide unless ``replace`` is set."""
        if not replace and spec.label in self._specs:
            raise ValueError(f"scenario {spec.label!r} already registered")
        self._specs[spec.label] = spec
        return spec

    def get(self, label: str) -> ScenarioSpec:
        """Look up one scenario by label."""
        if label not in self._specs:
            raise ValueError(
                f"unknown scenario {label!r}; available: {', '.join(self.labels())}"
            )
        return self._specs[label]

    def labels(self) -> Tuple[str, ...]:
        """All labels, in registration order."""
        return tuple(self._specs)

    def select(
        self,
        labels: Optional[Sequence[str]] = None,
        categories: Optional[Sequence[str]] = None,
    ) -> List[ScenarioSpec]:
        """Scenarios filtered by explicit labels and/or categories."""
        specs = [self.get(label) for label in labels] if labels is not None else list(self)
        if categories is not None:
            unknown = set(categories) - set(SCENARIO_CATEGORIES)
            if unknown:
                raise ValueError(f"unknown categories {sorted(unknown)}")
            specs = [spec for spec in specs if spec.category in categories]
        return specs

    def threats(self) -> List[ScenarioSpec]:
        """Scenarios a working platform is expected to detect."""
        return [spec for spec in self if spec.expected_detectable]

    def controls(self) -> List[ScenarioSpec]:
        """Healthy references used to measure the false-alarm rate."""
        return [spec for spec in self if spec.is_control]

    def __contains__(self, label: str) -> bool:
        return label in self._specs

    def __iter__(self) -> Iterator[ScenarioSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)


# ---------------------------------------------------------------------------
# Default catalogue: the full Section II-B threat catalogue + healthy controls
# ---------------------------------------------------------------------------


def build_default_catalog() -> ScenarioCatalog:
    """The standard campaign catalogue.

    Two healthy controls, the four total-failure models, parametric
    bias/correlation sweeps, the staged frequency/EM injection attacks of
    [15]/[16] and two aging trajectories.  Every builder scales its
    interesting time constants with the design's sequence length ``n``:
    staged injections begin two sequences in, aging drifts are sized so the
    bias becomes blatant within a handful of sequences.
    """
    catalog = ScenarioCatalog()
    register = catalog.register

    # -- healthy controls --------------------------------------------------
    register(ScenarioSpec(
        "healthy-ideal", "healthy",
        lambda seed, n: IdealSource(seed=seed),
        "ideal unbiased independent source (false-alarm baseline)",
        expected_detectable=False,
    ))
    register(ScenarioSpec(
        "healthy-oscillator", "healthy",
        lambda seed, n: RingOscillatorTRNG(seed=seed),
        "healthy jitter-sampling ring-oscillator TRNG",
        expected_detectable=False,
    ))

    # -- total failures ----------------------------------------------------
    register(ScenarioSpec(
        "wire-cut", "failure",
        lambda seed, n: DeadSource(),
        "cut TRNG output wire (constant 0)",
    ))
    register(ScenarioSpec(
        "stuck-at-1", "failure",
        lambda seed, n: StuckAtSource(1),
        "latched sampling flip-flop (constant 1)",
    ))
    register(ScenarioSpec(
        "alternating", "failure",
        lambda seed, n: AlternatingSource(),
        "oscillator locked to the sample clock (0101...)",
    ))
    register(ScenarioSpec(
        "burst-failure", "failure",
        lambda seed, n: BurstFailureSource(
            burst_rate=2.0 / n, burst_length=max(32, n // 4), seed=seed
        ),
        "intermittent total failure (stuck bursts of n/4 bits)",
    ))

    # -- parametric weakness sweeps ---------------------------------------
    for p_one in (0.52, 0.60, 0.70):
        register(ScenarioSpec(
            f"biased-{p_one:.2f}", "parametric",
            lambda seed, n, p=p_one: BiasedSource(p, seed=seed),
            f"supply/temperature induced bias, P(1) = {p_one:.2f}",
        ))
    for p_repeat in (0.60, 0.75):
        register(ScenarioSpec(
            f"correlated-{p_repeat:.2f}", "parametric",
            lambda seed, n, p=p_repeat: CorrelatedSource(p, seed=seed),
            f"under-sampled oscillator, P(repeat) = {p_repeat:.2f}",
        ))

    # -- active attacks ----------------------------------------------------
    register(ScenarioSpec(
        "freq-injection", "attack",
        lambda seed, n: FrequencyInjectionAttack(
            RingOscillatorTRNG(seed=seed), lock_strength=1.0, start_bit=0
        ),
        "power-supply frequency injection, active from the first bit [15]",
    ))
    register(ScenarioSpec(
        "freq-injection-staged", "attack",
        lambda seed, n: FrequencyInjectionAttack(
            RingOscillatorTRNG(seed=seed), lock_strength=1.0, start_bit=2 * n
        ),
        "frequency injection staged two sequences into the run [15]",
    ))
    register(ScenarioSpec(
        "em-injection", "attack",
        lambda seed, n: EMInjectionAttack(
            RingOscillatorTRNG(seed=seed), coupling=0.85, carrier_period=4,
            start_bit=0, seed=seed + 1,
        ),
        "contactless EM injection, 85% coupling to a 4-bit carrier [16]",
    ))
    register(ScenarioSpec(
        "em-injection-staged", "attack",
        lambda seed, n: EMInjectionAttack(
            RingOscillatorTRNG(seed=seed), coupling=0.85, carrier_period=4,
            start_bit=2 * n, seed=seed + 1,
        ),
        "EM injection staged two sequences into the run [16]",
    ))

    # -- aging -------------------------------------------------------------
    register(ScenarioSpec(
        "aging-drift", "aging",
        lambda seed, n: AgingSource(drift_per_bit=1.0 / (4.0 * n), seed=seed),
        "NBTI/HCI-style bias drift, blatant after ~2 sequences",
    ))
    register(ScenarioSpec(
        "aging-aged", "aging",
        lambda seed, n: AgingSource(
            drift_per_bit=1.0 / (8.0 * n), initial_bias=0.68, seed=seed
        ),
        "already-degraded source that keeps drifting",
    ))

    return catalog


#: The shared default catalogue used by the campaign runner, CLI and bench.
DEFAULT_CATALOG = build_default_catalog()
