"""The detection-campaign runner: scenarios x designs through the batch engine.

For every (scenario x design) cell, :func:`run_campaign` runs ``trials``
independent monitoring trials.  Each trial builds a fresh seeded source from
the scenario's builder, wraps the design's platform in an
:class:`~repro.core.monitor.OnTheFlyMonitor` and drains the source in whole
trial matrices (``batch_size = sequences_per_trial``): the monitor pulls a
``(sequences, n)`` uint8 matrix straight from the source's block-native
stream (:meth:`~repro.trng.source.EntropySource.generate_matrix`) and every
sequence is evaluated through the engine's batch path
(:meth:`~repro.core.platform.OnTheFlyPlatform.evaluate_batch`, vectorised
functional hardware model).  No per-bit Python runs anywhere on the
campaign hot path — neither for generation nor for evaluation.  The
monitor's latency and attribution hooks (first failed index, first failing
tests, per-test failure counts) provide the per-cell metrics.

Cells are independent, so with ``processes > 1`` they fan out over a process
pool — the campaign-level analogue of :func:`repro.engine.batch.run_batch`'s
expensive-test pool.  Pool dispatch is only available for the default
catalogue, since workers re-resolve scenarios by label.
"""

from __future__ import annotations

import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple

import repro.obs as obs
from repro.campaign.report import CampaignCell, CampaignReport
from repro.campaign.scenarios import DEFAULT_CATALOG, ScenarioCatalog, ScenarioSpec
from repro.core.configs import get_design
from repro.core.monitor import OnTheFlyMonitor
from repro.core.platform import OnTheFlyPlatform
from repro.engine.context import DEFAULT_BACKEND, validate_backend

__all__ = ["CampaignConfig", "run_campaign", "DEFAULT_CAMPAIGN_DESIGNS"]

#: Three design points spanning the sequence-length / test-subset space:
#: both 128-bit profiles (quick detection) and a 65536-bit design (power).
DEFAULT_CAMPAIGN_DESIGNS: Tuple[str, ...] = ("n128_light", "n128_medium", "n65536_light")

_CELL_SECONDS = obs.histogram(
    "repro_campaign_cell_seconds",
    "Wall time of one (design x scenario) campaign cell, all trials.",
    labels=("design", "scenario"),
)


@dataclass(frozen=True)
class CampaignConfig:
    """Configuration of one detection campaign.

    Attributes
    ----------
    designs:
        Design-point names to sweep (the test-set axis: each design bundles a
        sequence length and a NIST test subset).
    scenarios:
        Catalogue labels to run; empty tuple means the full catalogue.
    trials:
        Independent monitoring trials per cell (each with its own derived
        seed); detection probability is estimated over these.
    sequences_per_trial:
        Sequences monitored per trial — also the engine batch size.
    alpha:
        Level of significance of the software verdicts.
    suspect_after / fail_after:
        The monitor's health policy (consecutive failing sequences).
    seed:
        Base seed; every (design, scenario, trial) derives its own stream
        deterministically, so a campaign is reproducible cell by cell.
    processes:
        When > 1, cells fan out over a process pool of that size.
    backend:
        Compute backend of the engine's shared statistics (``"packed"``
        64-bit word kernels by default, ``"uint8"`` for the byte-per-bit
        reference paths); detection outcomes are identical either way.
    """

    designs: Tuple[str, ...] = DEFAULT_CAMPAIGN_DESIGNS
    scenarios: Tuple[str, ...] = ()
    trials: int = 3
    sequences_per_trial: int = 8
    alpha: float = 0.01
    suspect_after: int = 1
    fail_after: int = 2
    seed: int = 0
    processes: Optional[int] = None
    backend: str = DEFAULT_BACKEND

    def validate(self) -> None:
        if not self.designs:
            raise ValueError("need at least one design point")
        validate_backend(self.backend)
        if self.trials < 1:
            raise ValueError("trials must be positive")
        if self.sequences_per_trial < 1:
            raise ValueError("sequences_per_trial must be positive")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must lie in (0, 1)")
        for name in self.designs:
            get_design(name)  # raises KeyError with the available names


def _trial_seed(base: int, design: str, label: str, trial: int) -> int:
    """Deterministic per-trial seed, stable across cell execution order."""
    return zlib.crc32(f"{base}:{design}:{label}:{trial}".encode())


def _evaluate_cell(
    platform: OnTheFlyPlatform,
    design: str,
    spec: ScenarioSpec,
    config: CampaignConfig,
) -> CampaignCell:
    """Run all trials of one (scenario x design) cell and aggregate them."""
    with obs.span("campaign.cell", design=design, scenario=spec.label) as cell_span:
        cell = _evaluate_cell_inner(platform, design, spec, config)
    _CELL_SECONDS.observe(cell_span.duration_s, design=design, scenario=spec.label)
    return cell


def _evaluate_cell_inner(
    platform: OnTheFlyPlatform,
    design: str,
    spec: ScenarioSpec,
    config: CampaignConfig,
) -> CampaignCell:
    detected = 0
    failing_sequences = 0
    latency_sequences = []
    latency_bits = []
    attribution = {}
    first_detectors = {}
    for trial in range(config.trials):
        monitor = OnTheFlyMonitor(
            platform, suspect_after=config.suspect_after, fail_after=config.fail_after
        )
        # One block-native pull per trial: the whole trial matrix streams out
        # of the scenario source and through the engine batch path at once.
        matrix = spec.build_matrix(
            _trial_seed(config.seed, design, spec.label, trial),
            platform.n,
            config.sequences_per_trial,
        )
        for report in platform.evaluate_batch(matrix):
            monitor.observe(report)
        failing_sequences += sum(
            1 for event in monitor.history if not event.report.passed
        )
        if monitor.first_failed_index is not None:
            detected += 1
            latency_sequences.append(monitor.detection_latency_sequences())
            latency_bits.append(monitor.detection_latency_bits())
        for number in monitor.failing_test_counts():
            attribution[number] = attribution.get(number, 0) + 1
        for number in monitor.first_failing_tests or ():
            first_detectors[number] = first_detectors.get(number, 0) + 1
    total_sequences = config.trials * config.sequences_per_trial
    return CampaignCell(
        scenario=spec.label,
        category=spec.category,
        description=spec.description,
        expected_detectable=spec.expected_detectable,
        design=design,
        n=platform.n,
        tests=tuple(platform.tests),
        trials=config.trials,
        sequences_per_trial=config.sequences_per_trial,
        alpha=config.alpha,
        detected_trials=detected,
        detection_probability=detected / config.trials,
        mean_latency_sequences=(
            sum(latency_sequences) / len(latency_sequences) if latency_sequences else None
        ),
        mean_latency_bits=(
            sum(latency_bits) / len(latency_bits) if latency_bits else None
        ),
        sequence_failure_rate=failing_sequences / total_sequences,
        attribution=attribution,
        first_detectors=first_detectors,
    )


def _pool_cell(payload) -> Tuple[CampaignCell, Optional[str]]:
    """Run one cell in a worker process.

    Only default-catalogue campaigns are pooled (scenario builders are
    closures and do not pickle), so the worker re-resolves the scenario by
    label against its own imported catalogue — mirroring how the batch
    executor's pool workers re-resolve tests by id.  Returns the cell plus
    the worker platform's execution path so the report can still prove the
    sequences went through the batched engine path.
    """
    design, label, config = payload
    platform = OnTheFlyPlatform(design, alpha=config.alpha, backend=config.backend)
    cell = _evaluate_cell(platform, design, DEFAULT_CATALOG.get(label), config)
    return cell, platform.last_execution_path


def run_campaign(
    config: Optional[CampaignConfig] = None,
    catalog: Optional[ScenarioCatalog] = None,
    on_cell: Optional[Callable[[CampaignCell], None]] = None,
) -> CampaignReport:
    """Sweep the threat catalogue across design points.

    Parameters
    ----------
    config:
        Campaign configuration (defaults to :class:`CampaignConfig`, i.e.
        the full catalogue on three design points, three trials per cell).
    catalog:
        Scenario catalogue to draw from (default:
        :data:`~repro.campaign.scenarios.DEFAULT_CATALOG`).  Process-pool
        dispatch is only available for the default catalogue.
    on_cell:
        Optional callback invoked with every finished :class:`CampaignCell`
        in report order (progress streaming for long campaigns).

    Returns
    -------
    CampaignReport
        One cell per (design, scenario), design-major, in configured order.
    """
    config = config if config is not None else CampaignConfig()
    config.validate()
    catalog = catalog if catalog is not None else DEFAULT_CATALOG
    specs = catalog.select(list(config.scenarios) or None)
    if not specs:
        raise ValueError("no scenarios selected")
    labels = tuple(spec.label for spec in specs)

    cells = []
    # Evaluation-layer provenance surfaced in the report: how the per-cell
    # work was dispatched, and which engine path the platform's sequence
    # evaluations took (should read "batched" — the pool-free batch path).
    execution_paths: Dict[str, str] = {}
    pooled = (
        config.processes is not None
        and config.processes > 1
        and catalog is DEFAULT_CATALOG
    )
    if pooled:
        payloads = [
            (design, label, replace(config, processes=None))
            for design in config.designs
            for label in labels
        ]
        execution_paths["campaign.cells"] = "pooled"
        with ProcessPoolExecutor(max_workers=config.processes) as pool:
            for cell, platform_path in pool.map(_pool_cell, payloads):
                if platform_path is not None:
                    execution_paths["hw.platform"] = platform_path
                cells.append(cell)
                if on_cell is not None:
                    on_cell(cell)
    else:
        execution_paths["campaign.cells"] = "inline"
        for design in config.designs:
            platform = OnTheFlyPlatform(design, alpha=config.alpha, backend=config.backend)
            for spec in specs:
                cell = _evaluate_cell(platform, design, spec, config)
                cells.append(cell)
                if on_cell is not None:
                    on_cell(cell)
            if platform.last_execution_path is not None:
                execution_paths["hw.platform"] = platform.last_execution_path

    return CampaignReport(
        seed=config.seed,
        alpha=config.alpha,
        trials=config.trials,
        sequences_per_trial=config.sequences_per_trial,
        suspect_after=config.suspect_after,
        fail_after=config.fail_after,
        designs=tuple(config.designs),
        scenarios=labels,
        cells=cells,
        backend=config.backend,
        execution_paths=execution_paths,
    )
