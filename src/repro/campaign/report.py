"""Result containers of a detection campaign: cells, report, export.

A campaign evaluates every (scenario x design) cell; each cell aggregates a
number of independent monitoring trials into the three quantities the paper's
argument rests on — was the threat detected (detection probability), how fast
(detection latency in sequences and bits) and by which tests (per-test
attribution) — plus the sequence-level failure rate, which for the healthy
control scenarios *is* the false-alarm rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.export import JsonCsvExportMixin
from repro.eval.attribution import format_rows

__all__ = ["CampaignCell", "CampaignReport", "format_rows"]


def _fmt_optional(value: Optional[float], spec: str = ".1f") -> str:
    return "-" if value is None else format(value, spec)


@dataclass
class CampaignCell:
    """Aggregated outcome of all trials of one (scenario x design) cell."""

    scenario: str
    category: str
    description: str
    expected_detectable: bool
    design: str
    n: int
    tests: Tuple[int, ...]
    trials: int
    sequences_per_trial: int
    alpha: float
    detected_trials: int
    detection_probability: float
    mean_latency_sequences: Optional[float]
    mean_latency_bits: Optional[float]
    sequence_failure_rate: float
    #: test number -> trials in which the test flagged at least one sequence
    attribution: Dict[int, int] = field(default_factory=dict)
    #: test number -> trials in which the test was among the *first* detectors
    first_detectors: Dict[int, int] = field(default_factory=dict)

    @property
    def is_control(self) -> bool:
        """True for healthy-control cells (their alarms are false alarms)."""
        return not self.expected_detectable

    @property
    def false_alarm_rate(self) -> Optional[float]:
        """Sequence-level false-alarm rate (controls only, None otherwise)."""
        return self.sequence_failure_rate if self.is_control else None

    def attribution_string(self) -> str:
        """Compact ``test:count`` attribution, e.g. ``"1:5,3:5,13:4"``."""
        if not self.attribution:
            return "-"
        return ",".join(f"{number}:{count}" for number, count in sorted(self.attribution.items()))

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "category": self.category,
            "description": self.description,
            "expected_detectable": self.expected_detectable,
            "design": self.design,
            "n": self.n,
            "tests": list(self.tests),
            "trials": self.trials,
            "sequences_per_trial": self.sequences_per_trial,
            "alpha": self.alpha,
            "detected_trials": self.detected_trials,
            "detection_probability": self.detection_probability,
            "mean_latency_sequences": self.mean_latency_sequences,
            "mean_latency_bits": self.mean_latency_bits,
            "sequence_failure_rate": self.sequence_failure_rate,
            "false_alarm_rate": self.false_alarm_rate,
            "attribution": {str(k): v for k, v in sorted(self.attribution.items())},
            "first_detectors": {str(k): v for k, v in sorted(self.first_detectors.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignCell":
        return cls(
            scenario=data["scenario"],
            category=data["category"],
            description=data["description"],
            expected_detectable=data["expected_detectable"],
            design=data["design"],
            n=data["n"],
            tests=tuple(data["tests"]),
            trials=data["trials"],
            sequences_per_trial=data["sequences_per_trial"],
            alpha=data["alpha"],
            detected_trials=data["detected_trials"],
            detection_probability=data["detection_probability"],
            mean_latency_sequences=data["mean_latency_sequences"],
            mean_latency_bits=data["mean_latency_bits"],
            sequence_failure_rate=data["sequence_failure_rate"],
            attribution={int(k): v for k, v in data["attribution"].items()},
            first_detectors={int(k): v for k, v in data["first_detectors"].items()},
        )


#: Columns of the human-readable / CSV summary table.
SUMMARY_COLUMNS = (
    "scenario", "category", "design", "n", "detect_prob",
    "latency_seqs", "latency_bits", "seq_fail_rate", "false_alarm",
    "detected_by",
)


@dataclass
class CampaignReport(JsonCsvExportMixin):
    """Everything one detection campaign produced.

    Cells are ordered design-major in the configured design order, scenario
    order within each design, so two runs with the same configuration and
    seed serialise identically (the reproducibility contract of the
    campaign's golden tests).
    """

    SUMMARY_COLUMNS = SUMMARY_COLUMNS

    seed: int
    alpha: float
    trials: int
    sequences_per_trial: int
    suspect_after: int
    fail_after: int
    designs: Tuple[str, ...]
    scenarios: Tuple[str, ...]
    cells: List[CampaignCell] = field(default_factory=list)
    #: Compute backend the engine's shared statistics ran on ("packed" word
    #: kernels or the "uint8" reference paths); P-values are identical.
    backend: str = "packed"
    #: Evaluation layer -> execution path the campaign took for it
    #: ("hw.platform": "batched"/"inline" per-sequence platform fallback;
    #: "campaign.cells": "pooled"/"inline" cell dispatch).  Empty for
    #: reports saved before execution paths were recorded.
    execution_paths: Dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------- selection
    def cells_for_design(self, design: str) -> List[CampaignCell]:
        return [cell for cell in self.cells if cell.design == design]

    def control_cells(self) -> List[CampaignCell]:
        return [cell for cell in self.cells if cell.is_control]

    def threat_cells(self) -> List[CampaignCell]:
        return [cell for cell in self.cells if not cell.is_control]

    def control_false_alarm_rate(self, design: str) -> Optional[float]:
        """Mean sequence-level false-alarm rate of ``design``'s control cells."""
        rates = [
            cell.sequence_failure_rate
            for cell in self.control_cells()
            if cell.design == design
        ]
        if not rates:
            return None
        return sum(rates) / len(rates)

    def detected_everywhere(self) -> List[str]:
        """Threat scenarios detected in every trial on every design."""
        by_scenario: Dict[str, bool] = {}
        for cell in self.threat_cells():
            previous = by_scenario.get(cell.scenario, True)
            by_scenario[cell.scenario] = previous and cell.detection_probability == 1.0
        return [label for label, everywhere in by_scenario.items() if everywhere]

    # ------------------------------------------------------------- rendering
    def summary_rows(self) -> List[Dict[str, object]]:
        """One row per cell, with the design's control false-alarm rate."""
        rows = []
        for cell in self.cells:
            control_rate = self.control_false_alarm_rate(cell.design)
            rows.append(
                {
                    "scenario": cell.scenario,
                    "category": cell.category,
                    "design": cell.design,
                    "n": cell.n,
                    "detect_prob": f"{cell.detection_probability:.2f}",
                    "latency_seqs": _fmt_optional(cell.mean_latency_sequences),
                    "latency_bits": _fmt_optional(cell.mean_latency_bits, ".0f"),
                    "seq_fail_rate": f"{cell.sequence_failure_rate:.2f}",
                    "false_alarm": _fmt_optional(control_rate, ".3f"),
                    "detected_by": cell.attribution_string(),
                }
            )
        return rows

    def format_table(self) -> str:
        """The human-readable detection-latency / detection-probability table."""
        return format_rows(self.summary_rows(), SUMMARY_COLUMNS)

    # ------------------------------------------------------------- export
    def to_dict(self) -> Dict[str, object]:
        return {
            "config": {
                "seed": self.seed,
                "alpha": self.alpha,
                "trials": self.trials,
                "sequences_per_trial": self.sequences_per_trial,
                "suspect_after": self.suspect_after,
                "fail_after": self.fail_after,
                "designs": list(self.designs),
                "scenarios": list(self.scenarios),
                "backend": self.backend,
            },
            "cells": [cell.to_dict() for cell in self.cells],
            "execution_paths": dict(sorted(self.execution_paths.items())),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignReport":
        config = data["config"]
        return cls(
            seed=config["seed"],
            alpha=config["alpha"],
            trials=config["trials"],
            sequences_per_trial=config["sequences_per_trial"],
            suspect_after=config["suspect_after"],
            fail_after=config["fail_after"],
            designs=tuple(config["designs"]),
            scenarios=tuple(config["scenarios"]),
            cells=[CampaignCell.from_dict(cell) for cell in data["cells"]],
            # Reports saved before the packed backend existed ran on uint8.
            backend=config.get("backend", "uint8"),
            # Older reports recorded no execution paths.
            execution_paths={
                str(k): str(v)
                for k, v in data.get("execution_paths", {}).items()
            },
        )

    # to_json / from_json / save_json / to_csv / save_csv come from
    # JsonCsvExportMixin, shared with the fleet report.
