"""Detection-evaluation campaigns over the Section II-B threat catalogue.

The paper's core claim is not throughput but *detection*: the on-the-fly
platform must catch total failures, aging degradation and active attacks
quickly, across design points.  This subpackage evaluates that claim
systematically: a :class:`ScenarioCatalog` registers the full threat
catalogue as seeded source builders, :func:`run_campaign` sweeps every
(scenario x design) cell through the batch engine with a configurable number
of trials, and the resulting :class:`CampaignReport` tabulates detection
probability, detection latency (sequences and bits), per-test attribution
(which test caught which threat) and the healthy-control false-alarm rate,
with JSON/CSV export.

Quickstart::

    from repro.campaign import CampaignConfig, run_campaign

    report = run_campaign(CampaignConfig(
        designs=("n128_light", "n128_medium"),
        trials=3, sequences_per_trial=8, seed=42,
    ))
    print(report.format_table())
    report.save_json("campaign.json")
"""

from repro.campaign.report import CampaignCell, CampaignReport, format_rows
from repro.campaign.runner import (
    CampaignConfig,
    DEFAULT_CAMPAIGN_DESIGNS,
    run_campaign,
)
from repro.campaign.scenarios import (
    DEFAULT_CATALOG,
    SCENARIO_CATEGORIES,
    ScenarioCatalog,
    ScenarioSpec,
    build_default_catalog,
)

__all__ = [
    "CampaignCell",
    "CampaignConfig",
    "CampaignReport",
    "DEFAULT_CAMPAIGN_DESIGNS",
    "DEFAULT_CATALOG",
    "SCENARIO_CATEGORIES",
    "ScenarioCatalog",
    "ScenarioSpec",
    "build_default_catalog",
    "format_rows",
    "run_campaign",
]
