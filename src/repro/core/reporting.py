"""Alarm-wire vs value-based reporting under a probing attack.

Section I-A of the paper points out a weakness of every previous embedded
test implementation: the hardware raises a single *alarm signal* on failure,
and an attacker who grounds that wire (a trivial probing/fault attack) hides
every failure.  The paper's architecture instead transmits a *set of
numerical values* to the software, which both evaluates the tests and — in
this reproduction, made explicit — cross-checks the values' structural
consistency.  This module models both reporting styles so the difference can
be measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.platform import OnTheFlyPlatform
from repro.core.results import PlatformReport
from repro.hwsim.register_file import RegisterFile
from repro.trng.attacks import ProbingAttack
from repro.trng.source import EntropySource

__all__ = [
    "AlarmWireReporter",
    "ValueBasedReporter",
    "TamperedRegisterFile",
    "compare_reporting_under_probing",
]


class AlarmWireReporter:
    """Classic reporting: the hardware block drives a single alarm wire.

    The alarm is the OR of all per-test failure flags; a probing attack on
    the wire forces it to the attacker's chosen level regardless of the
    actual test outcomes.
    """

    def __init__(self, probing: Optional[ProbingAttack] = None):
        self.probing = probing

    def alarm(self, report: PlatformReport) -> bool:
        """True when a failure is (apparently) signalled."""
        genuine_alarm = not report.passed
        if self.probing is None:
            return genuine_alarm
        return self.probing.tamper_alarm(genuine_alarm)


class TamperedRegisterFile(RegisterFile):
    """A register file whose read-out bus is under a probing attack.

    Every read returns the forced all-zeros / all-ones pattern instead of the
    true counter value, which is what grounding (or pulling up) the shared
    read bus achieves physically.
    """

    def __init__(self, inner: RegisterFile, probing: ProbingAttack):
        super().__init__(bus_width=inner.bus_width, address_bits=inner.address_bits)
        self._inner = inner
        self._probing = probing
        for row in inner.memory_map():
            name = str(row["name"])
            width = int(row["width"])
            self.add(name, width, self._tampered_getter(name, width))

    def _tampered_getter(self, name: str, width: int):
        def getter() -> int:
            true_value = self._inner.read(name)
            return self._probing.tamper_value(true_value, width)

        return getter


class ValueBasedReporter:
    """The paper's reporting style: software reads and validates raw values."""

    def __init__(self, platform: OnTheFlyPlatform, probing: Optional[ProbingAttack] = None):
        self.platform = platform
        self.probing = probing

    def report(self) -> PlatformReport:
        """Software verification pass over the (possibly tampered) read-out."""
        register_file = self.platform.hardware.register_file
        if self.probing is not None:
            register_file = TamperedRegisterFile(register_file, self.probing)
        software = self.platform.software
        software.processor.reset_counts()
        verdicts = software.verify(register_file)
        violations = software.consistency_check(register_file)
        return PlatformReport(
            design_name=self.platform.design.name,
            n=self.platform.n,
            alpha=self.platform.alpha,
            verdicts=verdicts,
            hardware_values={name: register_file.read(name) for name in register_file.names()},
            instruction_counts=software.instruction_counts(),
            consistency_violations=violations,
        )

    def failure_detected(self) -> bool:
        """True when the software flags the source (test failure or tampering)."""
        return not self.report().passed


@dataclass
class ReportingComparison:
    """Outcome of the alarm-wire vs value-based comparison."""

    source_is_bad: bool
    alarm_wire_detects: bool
    alarm_wire_detects_under_probing: bool
    value_based_detects: bool
    value_based_detects_under_probing: bool
    consistency_violations_under_probing: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "source_is_bad": self.source_is_bad,
            "alarm_wire_detects": self.alarm_wire_detects,
            "alarm_wire_detects_under_probing": self.alarm_wire_detects_under_probing,
            "value_based_detects": self.value_based_detects,
            "value_based_detects_under_probing": self.value_based_detects_under_probing,
            "consistency_violations_under_probing": self.consistency_violations_under_probing,
        }


def compare_reporting_under_probing(
    platform: OnTheFlyPlatform,
    source: EntropySource,
    probing: Optional[ProbingAttack] = None,
    source_is_bad: bool = True,
) -> ReportingComparison:
    """Measure both reporting styles on one sequence, with and without probing.

    Parameters
    ----------
    platform:
        The HW/SW platform (its hardware block will be re-run).
    source:
        The entropy source to draw one n-bit sequence from (typically a
        failed/attacked source, so that there *is* something to detect).
    probing:
        The probing attack model; defaults to grounding.
    source_is_bad:
        Ground-truth label recorded in the comparison result.
    """
    probing = probing or ProbingAttack(mode="ground")
    clean_report = platform.evaluate_source(source)

    alarm_clean = AlarmWireReporter().alarm(clean_report)
    alarm_probed = AlarmWireReporter(probing).alarm(clean_report)

    value_clean = not clean_report.passed
    probed_reporter = ValueBasedReporter(platform, probing=probing)
    probed_report = probed_reporter.report()
    value_probed = not probed_report.passed

    return ReportingComparison(
        source_is_bad=source_is_bad,
        alarm_wire_detects=alarm_clean,
        alarm_wire_detects_under_probing=alarm_probed,
        value_based_detects=value_clean,
        value_based_detects_under_probing=value_probed,
        consistency_violations_under_probing=len(probed_report.consistency_violations),
    )
