"""The eight published design points (the columns of Table III).

Each design point fixes a sequence length and a subset of the nine
hardware-suitable NIST tests.  The reconstruction of which test belongs to
which design is documented in DESIGN.md §4 (the paper's dot table is
ambiguous in the plain-text source; the assignment below matches every
numeric constraint the paper states).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.hwtests.parameters import DesignParameters

__all__ = ["DesignPoint", "STANDARD_DESIGNS", "get_design", "list_designs"]


@dataclass(frozen=True)
class DesignPoint:
    """One column of Table III: a sequence length and a test subset."""

    name: str
    n: int
    tests: Tuple[int, ...]
    profile: str
    description: str = ""

    @property
    def parameters(self) -> DesignParameters:
        """The derived per-test parameters for this sequence length."""
        return DesignParameters.for_length(self.n)

    @property
    def num_tests(self) -> int:
        """Number of NIST tests implemented by this design point."""
        return len(self.tests)


def _design(name: str, n: int, tests: Tuple[int, ...], profile: str, description: str) -> DesignPoint:
    return DesignPoint(name=name, n=n, tests=tests, profile=profile, description=description)


#: The eight design points of Table III, keyed by name.
STANDARD_DESIGNS: Dict[str, DesignPoint] = {
    design.name: design
    for design in (
        _design(
            "n128_light", 128, (1, 2, 3, 4, 13), "light",
            "Smallest design: quick tests on 128-bit sequences (52 slices / 5 tests in the paper)",
        ),
        _design(
            "n128_medium", 128, (1, 2, 3, 4, 11, 12, 13), "medium",
            "128-bit sequences with the serial and approximate-entropy tests added (7 tests)",
        ),
        _design(
            "n65536_light", 65536, (1, 2, 3, 4, 13), "light",
            "Balanced sequence length, quick-test subset",
        ),
        _design(
            "n65536_medium", 65536, (1, 2, 3, 4, 7, 13), "medium",
            "Balanced design compared against [13] in Table IV",
        ),
        _design(
            "n65536_high", 65536, (1, 2, 3, 4, 7, 8, 11, 12, 13), "high",
            "All nine hardware-suitable tests on 65536-bit sequences",
        ),
        _design(
            "n1048576_light", 1048576, (1, 2, 3, 4, 13), "light",
            "Long-term evaluation, quick-test subset",
        ),
        _design(
            "n1048576_medium", 1048576, (1, 2, 3, 4, 7, 13), "medium",
            "Long-term evaluation with the non-overlapping template test",
        ),
        _design(
            "n1048576_high", 1048576, (1, 2, 3, 4, 7, 8, 11, 12, 13), "high",
            "Largest design: all nine tests on 2^20-bit sequences (552 slices / 9 tests in the paper)",
        ),
    )
}


def get_design(name: str) -> DesignPoint:
    """Look up a design point by name (e.g. ``"n65536_medium"``)."""
    if name not in STANDARD_DESIGNS:
        raise KeyError(
            f"unknown design {name!r}; available: {', '.join(sorted(STANDARD_DESIGNS))}"
        )
    return STANDARD_DESIGNS[name]


def list_designs() -> List[DesignPoint]:
    """All standard design points, ordered as in Table III."""
    order = [
        "n128_light", "n128_medium",
        "n65536_light", "n65536_medium", "n65536_high",
        "n1048576_light", "n1048576_medium", "n1048576_high",
    ]
    return [STANDARD_DESIGNS[name] for name in order]
