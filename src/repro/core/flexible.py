"""Runtime-selectable sequence length — the paper's first future-work item.

Section V proposes "modifying the hardware blocks to allow for more
flexibility, for example by allowing the software to select the length of the
test sequence, as well as the test parameters".  This module provides a
functional model of that extension:

* the hardware is provisioned once for the *largest* supported sequence
  length (counter widths, pattern banks, register map), plus a small
  configuration register and the boundary-select multiplexers needed to let
  the block detection work for any supported power-of-two length;
* at run time the software writes the desired length into the configuration
  register (:meth:`FlexibleLengthPlatform.reconfigure`) and from then on the
  block behaves exactly like the fixed design of that length — which is how
  the model realises it: behaviourally it delegates to the corresponding
  fixed configuration, while the resource accounting always reflects the
  max-length provisioning plus the configuration overhead.

The companion benchmark (``bench_flexible_length.py``) quantifies the area
premium of this flexibility against the fixed design points.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.platform import OnTheFlyPlatform
from repro.core.configs import DesignPoint
from repro.core.results import PlatformReport
from repro.eval.fpga import FpgaEstimate, estimate_fpga
from repro.hwsim.resources import ResourceReport
from repro.hwtests.block import UnifiedTestingBlock
from repro.hwtests.parameters import DesignParameters, SharingOptions, clog2, is_power_of_two
from repro.nist.common import BitsLike
from repro.trng.source import EntropySource

__all__ = ["FlexibleLengthPlatform"]


class FlexibleLengthPlatform:
    """A platform whose sequence length is selected by the software at run time.

    Parameters
    ----------
    supported_lengths:
        The power-of-two sequence lengths the hardware must support
        (default: the paper's three lengths 128, 65 536 and 2^20).
    tests:
        The NIST test subset (default: all nine hardware-suitable tests).
    alpha:
        Level of significance used by the software routines.
    initial_length:
        The length selected at power-up (default: the largest supported).
    """

    def __init__(
        self,
        supported_lengths: Sequence[int] = (128, 65536, 1048576),
        tests: Sequence[int] = (1, 2, 3, 4, 7, 8, 11, 12, 13),
        alpha: float = 0.01,
        initial_length: Optional[int] = None,
        sharing: SharingOptions = SharingOptions(),
        word_bits: int = 16,
    ):
        lengths = tuple(sorted(set(int(n) for n in supported_lengths)))
        if not lengths:
            raise ValueError("at least one supported length is required")
        for n in lengths:
            if not is_power_of_two(n) or n < 128:
                raise ValueError(
                    f"supported lengths must be powers of two >= 128, got {n}"
                )
        self.supported_lengths = lengths
        self.tests = tuple(sorted(set(tests)))
        self.alpha = alpha
        self.sharing = sharing
        self.word_bits = word_bits
        self._platforms: Dict[int, OnTheFlyPlatform] = {}
        self._active_length = int(initial_length) if initial_length else lengths[-1]
        if self._active_length not in lengths:
            raise ValueError(
                f"initial_length {self._active_length} is not among the supported lengths {lengths}"
            )

    # ------------------------------------------------------------------ config
    @property
    def active_length(self) -> int:
        """The currently configured sequence length."""
        return self._active_length

    @property
    def max_length(self) -> int:
        """The largest supported sequence length (what the hardware is sized for)."""
        return self.supported_lengths[-1]

    def reconfigure(self, n: int) -> None:
        """Select a new sequence length (a software write to the config register)."""
        if n not in self.supported_lengths:
            raise ValueError(
                f"length {n} is not supported; choose from {self.supported_lengths}"
            )
        self._active_length = int(n)

    def set_alpha(self, alpha: float) -> None:
        """Change the level of significance for every supported length."""
        self.alpha = alpha
        for platform in self._platforms.values():
            platform.set_alpha(alpha)

    # ------------------------------------------------------------------ behaviour
    def _design_for(self, n: int) -> DesignPoint:
        return DesignPoint(
            name=f"flexible_n{n}",
            n=n,
            tests=self.tests,
            profile="flexible",
            description=f"runtime-configured length {n} of a flexible block "
            f"(max {self.max_length})",
        )

    def _platform(self, n: Optional[int] = None) -> OnTheFlyPlatform:
        n = n or self._active_length
        if n not in self._platforms:
            self._platforms[n] = OnTheFlyPlatform(
                self._design_for(n),
                alpha=self.alpha,
                sharing=self.sharing,
                word_bits=self.word_bits,
            )
        return self._platforms[n]

    def evaluate_sequence(self, bits: BitsLike, accelerated: bool = True) -> PlatformReport:
        """Evaluate one sequence of the currently configured length."""
        return self._platform().evaluate_sequence(bits, accelerated=accelerated)

    def evaluate_source(self, source: EntropySource, accelerated: bool = True) -> PlatformReport:
        """Draw and evaluate one sequence of the currently configured length.

        The default pulls one whole block from the source and runs the
        vectorised functional hardware model; ``accelerated=False`` selects
        the bit-serial RTL-fidelity path.
        """
        return self._platform().evaluate_source(source, accelerated=accelerated)

    # ------------------------------------------------------------------ resources
    def configuration_overhead(self) -> ResourceReport:
        """Extra hardware needed for run-time length selection.

        The overhead consists of the length-configuration register (one bit
        per supported length exponent is generous), and one multiplexer LUT
        per block-boundary compare bit of every block-based test, so that the
        boundary decode can select among ``len(supported_lengths)`` masks.
        """
        num_lengths = len(self.supported_lengths)
        config_register_bits = max(1, clog2(num_lengths))
        # Block-based tests: 2 (block frequency), 4 (longest run), 7 and 8
        # (templates) each compare ~log2(max block length) counter bits.
        block_tests = [t for t in self.tests if t in (2, 4, 7, 8)]
        mask_bits = clog2(self.max_length)
        mux_luts = float(len(block_tests) * mask_bits * max(1, num_lengths - 1)) / 2.0
        return ResourceReport(
            flip_flops=config_register_bits,
            lut_estimate=mux_luts + config_register_bits,
            max_counter_width=0,
            readout_values=0,
            components={"register": 1},
            label="length-configuration overhead",
        )

    def resources(self) -> ResourceReport:
        """Resource usage: the max-length block plus the configuration overhead."""
        max_block = UnifiedTestingBlock(
            DesignParameters.for_length(self.max_length),
            tests=self.tests,
            sharing=self.sharing,
            bus_width=self.word_bits,
        )
        report = max_block.resources().merge(self.configuration_overhead())
        return ResourceReport(
            flip_flops=report.flip_flops,
            lut_estimate=report.lut_estimate,
            max_counter_width=report.max_counter_width,
            readout_values=max_block.resources().readout_values,
            components=report.components,
            label=f"flexible(max_n={self.max_length}, lengths={len(self.supported_lengths)})",
        )

    def fpga_estimate(self) -> FpgaEstimate:
        """Spartan-6 estimate of the flexible block."""
        return estimate_fpga(self.resources())

    def overhead_versus_fixed(self) -> Tuple[int, int, float]:
        """(flexible slices, fixed max-length slices, overhead fraction)."""
        fixed = UnifiedTestingBlock(
            DesignParameters.for_length(self.max_length),
            tests=self.tests,
            sharing=self.sharing,
            bus_width=self.word_bits,
        )
        fixed_slices = estimate_fpga(fixed.resources()).slices
        flexible_slices = self.fpga_estimate().slices
        return flexible_slices, fixed_slices, flexible_slices / fixed_slices - 1.0

    def __repr__(self) -> str:
        return (
            f"FlexibleLengthPlatform(lengths={self.supported_lengths}, "
            f"active={self.active_length}, tests={self.tests})"
        )
