"""The paper's primary contribution: the HW/SW on-the-fly testing platform.

* :mod:`repro.core.configs` — the eight published design points (sequence
  length × test-subset);
* :mod:`repro.core.platform` — :class:`OnTheFlyPlatform`, wiring a TRNG, the
  unified hardware testing block and the software verifier together (Fig. 1);
* :mod:`repro.core.monitor` — continuous on-the-fly monitoring of a running
  entropy source with a configurable health policy;
* :mod:`repro.core.reporting` — alarm-wire vs value-based reporting under a
  probing attack (the paper's security argument).
"""

from repro.core.configs import DesignPoint, STANDARD_DESIGNS, get_design, list_designs
from repro.core.results import PlatformReport, SequenceVerdict
from repro.core.platform import OnTheFlyPlatform
from repro.core.monitor import HealthState, MonitorEvent, OnTheFlyMonitor
from repro.core.reporting import (
    AlarmWireReporter,
    ValueBasedReporter,
    compare_reporting_under_probing,
)
from repro.core.flexible import FlexibleLengthPlatform

__all__ = [
    "FlexibleLengthPlatform",
    "DesignPoint",
    "STANDARD_DESIGNS",
    "get_design",
    "list_designs",
    "PlatformReport",
    "SequenceVerdict",
    "OnTheFlyPlatform",
    "HealthState",
    "MonitorEvent",
    "OnTheFlyMonitor",
    "AlarmWireReporter",
    "ValueBasedReporter",
    "compare_reporting_under_probing",
]
