"""Result containers of the platform."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sw.processor import InstructionCounts
from repro.sw.routines import SoftwareVerdict

__all__ = ["SequenceVerdict", "PlatformReport"]


@dataclass
class SequenceVerdict:
    """Per-test decision for one evaluated sequence."""

    test_number: int
    name: str
    passed: bool
    statistic: float
    threshold: float


@dataclass
class PlatformReport:
    """Everything the platform produces for one n-bit sequence.

    Attributes
    ----------
    design_name:
        Name of the design point that produced the report.
    n:
        Sequence length.
    alpha:
        Level of significance used by the software routines.
    verdicts:
        Per-test software verdicts keyed by NIST test number.
    hardware_values:
        Snapshot of the memory-mapped register file (the values an operator
        or auditor would log — the paper's value-based reporting).
    instruction_counts:
        16-bit instruction tally of the software verification pass.
    consistency_violations:
        Violated read-out invariants (non-empty indicates tampering or a
        hardware fault; see ``SoftwareVerifier.consistency_check``).
    """

    design_name: str
    n: int
    alpha: float
    verdicts: Dict[int, SoftwareVerdict]
    hardware_values: Dict[str, int] = field(default_factory=dict)
    instruction_counts: Optional[InstructionCounts] = None
    consistency_violations: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every test passed and the read-out was consistent."""
        return not self.consistency_violations and all(
            verdict.passed for verdict in self.verdicts.values()
        )

    @property
    def failing_tests(self) -> List[int]:
        """Test numbers that rejected the randomness hypothesis."""
        return sorted(
            number for number, verdict in self.verdicts.items() if not verdict.passed
        )

    def summary_rows(self) -> List[Dict[str, object]]:
        """Tabular per-test summary for printing."""
        rows = []
        for number in sorted(self.verdicts):
            verdict = self.verdicts[number]
            rows.append(
                {
                    "test": number,
                    "name": verdict.name,
                    "statistic": verdict.statistic,
                    "threshold": verdict.threshold,
                    "passed": verdict.passed,
                }
            )
        return rows
