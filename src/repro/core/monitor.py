"""Continuous on-the-fly monitoring of a running entropy source.

The platform of :mod:`repro.core.platform` evaluates one n-bit sequence at a
time; a deployed TRNG is monitored *continuously* — the hardware block stays
active whenever the TRNG runs (Section III-A), and the software checks the
results sequence after sequence.  :class:`OnTheFlyMonitor` models that
operation, including a simple health policy (how many consecutive failing
sequences demote the source to SUSPECT / FAILED) of the kind an AIS-31-style
integrator would wrap around the raw test outcomes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional

from repro.core.platform import OnTheFlyPlatform
from repro.core.results import PlatformReport
from repro.trng.source import EntropySource

__all__ = ["HealthState", "MonitorEvent", "OnTheFlyMonitor"]


class HealthState(enum.Enum):
    """Health of the monitored entropy source."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    FAILED = "failed"


@dataclass
class MonitorEvent:
    """One monitored sequence: its report and the resulting health state."""

    sequence_index: int
    report: PlatformReport
    state: HealthState
    consecutive_failures: int


class OnTheFlyMonitor:
    """Sequence-by-sequence health monitor wrapped around a platform.

    Parameters
    ----------
    platform:
        The HW/SW platform doing the per-sequence evaluation.
    suspect_after:
        Number of consecutive failing sequences after which the source is
        reported SUSPECT.
    fail_after:
        Number of consecutive failing sequences after which the source is
        reported FAILED (a total failure requiring the TRNG output to be
        disconnected from consumers).
    on_event:
        Optional callback invoked with every :class:`MonitorEvent`.
    """

    def __init__(
        self,
        platform: OnTheFlyPlatform,
        suspect_after: int = 1,
        fail_after: int = 2,
        on_event: Optional[Callable[[MonitorEvent], None]] = None,
    ):
        if suspect_after < 1 or fail_after < suspect_after:
            raise ValueError("need 1 <= suspect_after <= fail_after")
        self.platform = platform
        self.suspect_after = suspect_after
        self.fail_after = fail_after
        self.on_event = on_event
        self.history: List[MonitorEvent] = []
        self._consecutive_failures = 0

    # ------------------------------------------------------------------ state
    @property
    def state(self) -> HealthState:
        """Current health state of the monitored source."""
        if self._consecutive_failures >= self.fail_after:
            return HealthState.FAILED
        if self._consecutive_failures >= self.suspect_after:
            return HealthState.SUSPECT
        return HealthState.HEALTHY

    @property
    def sequences_monitored(self) -> int:
        """Number of sequences evaluated so far."""
        return len(self.history)

    def reset(self) -> None:
        """Forget all history (e.g. after the TRNG has been serviced)."""
        self.history = []
        self._consecutive_failures = 0

    # ------------------------------------------------------------------ monitoring
    def observe(self, report: PlatformReport) -> MonitorEvent:
        """Fold one sequence report into the health state."""
        if report.passed:
            self._consecutive_failures = 0
        else:
            self._consecutive_failures += 1
        event = MonitorEvent(
            sequence_index=len(self.history),
            report=report,
            state=self.state,
            consecutive_failures=self._consecutive_failures,
        )
        self.history.append(event)
        if self.on_event is not None:
            self.on_event(event)
        return event

    def monitor(self, source: EntropySource, num_sequences: int) -> List[MonitorEvent]:
        """Monitor ``source`` for ``num_sequences`` consecutive n-bit sequences."""
        if num_sequences < 1:
            raise ValueError("num_sequences must be positive")
        events = []
        for _ in range(num_sequences):
            report = self.platform.evaluate_source(source)
            events.append(self.observe(report))
        return events

    def monitor_until_failure(
        self, source: EntropySource, max_sequences: int = 1000
    ) -> Iterator[MonitorEvent]:
        """Yield events until the source is FAILED or the budget is exhausted."""
        for _ in range(max_sequences):
            report = self.platform.evaluate_source(source)
            event = self.observe(report)
            yield event
            if event.state is HealthState.FAILED:
                return

    # ------------------------------------------------------------------ reporting
    def failure_rate(self) -> float:
        """Fraction of monitored sequences with at least one failing test."""
        if not self.history:
            return 0.0
        failures = sum(1 for event in self.history if not event.report.passed)
        return failures / len(self.history)

    def detection_latency_bits(self) -> Optional[int]:
        """Bits consumed until the first FAILED state (None if never failed)."""
        for event in self.history:
            if event.state is HealthState.FAILED:
                return (event.sequence_index + 1) * self.platform.n
        return None
