"""Continuous on-the-fly monitoring of a running entropy source.

The platform of :mod:`repro.core.platform` evaluates one n-bit sequence at a
time; a deployed TRNG is monitored *continuously* — the hardware block stays
active whenever the TRNG runs (Section III-A), and the software checks the
results sequence after sequence.  :class:`OnTheFlyMonitor` models that
operation, including a simple health policy (how many consecutive failing
sequences demote the source to SUSPECT / FAILED) of the kind an AIS-31-style
integrator would wrap around the raw test outcomes.

:class:`MonitorStream` is the push-driven streaming variant: instead of the
monitor pulling whole n-bit sequences from a source, the producer pushes
bits in arbitrary-size chunks into a
:class:`~repro.engine.streaming.StreamingContext` ring, and every ``stride``
new bits the trailing n-bit window is evaluated from the ring's running
statistics — no history slicing, no re-packing, O(window) memory however
long the stream runs.  With ``stride == n`` the health-state trajectory is
bit-identical to the classic pull loop.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterator, List, Optional, Tuple, Union

from repro.core.platform import OnTheFlyPlatform
from repro.core.results import PlatformReport
from repro.engine.packed import PackedMatrix
from repro.engine.streaming import StreamingContext
from repro.nist.common import BitsLike, to_bits
from repro.trng.source import EntropySource

__all__ = ["HealthState", "MonitorEvent", "MonitorStream", "OnTheFlyMonitor"]


class HealthState(enum.Enum):
    """Health of the monitored entropy source."""

    HEALTHY = "healthy"
    SUSPECT = "suspect"
    FAILED = "failed"


@dataclass
class MonitorEvent:
    """One monitored sequence: its report and the resulting health state."""

    sequence_index: int
    report: PlatformReport
    state: HealthState
    consecutive_failures: int


class OnTheFlyMonitor:
    """Sequence-by-sequence health monitor wrapped around a platform.

    Parameters
    ----------
    platform:
        The HW/SW platform doing the per-sequence evaluation.
    suspect_after:
        Number of consecutive failing sequences after which the source is
        reported SUSPECT.
    fail_after:
        Number of consecutive failing sequences after which the source is
        reported FAILED (a total failure requiring the TRNG output to be
        disconnected from consumers).
    on_event:
        Optional callback invoked with every :class:`MonitorEvent`.
    max_history:
        When set, only the most recent ``max_history`` events are retained
        in :attr:`history` (a bounded deque), so monitoring millions of
        sequences runs in constant memory.  The aggregate statistics
        (:attr:`sequences_monitored`, :meth:`failure_rate`,
        :meth:`detection_latency_bits`) are kept exact via running totals
        regardless of the bound.
    """

    def __init__(
        self,
        platform: OnTheFlyPlatform,
        suspect_after: int = 1,
        fail_after: int = 2,
        on_event: Optional[Callable[[MonitorEvent], None]] = None,
        max_history: Optional[int] = None,
    ):
        if suspect_after < 1 or fail_after < suspect_after:
            raise ValueError("need 1 <= suspect_after <= fail_after")
        if max_history is not None and max_history < 1:
            raise ValueError("max_history must be positive (or None for unbounded)")
        self.platform = platform
        self.suspect_after = suspect_after
        self.fail_after = fail_after
        self.on_event = on_event
        self.max_history = max_history
        self.history: Deque[MonitorEvent] = deque(maxlen=max_history)
        self._consecutive_failures = 0
        self._sequences_monitored = 0
        self._failures_total = 0
        self._first_failed_index: Optional[int] = None
        self._first_suspect_index: Optional[int] = None
        self._first_failing_tests: Optional[Tuple[int, ...]] = None
        self._failing_test_counts: Dict[int, int] = {}

    # ------------------------------------------------------------------ state
    @property
    def state(self) -> HealthState:
        """Current health state of the monitored source."""
        if self._consecutive_failures >= self.fail_after:
            return HealthState.FAILED
        if self._consecutive_failures >= self.suspect_after:
            return HealthState.SUSPECT
        return HealthState.HEALTHY

    @property
    def sequences_monitored(self) -> int:
        """Number of sequences evaluated so far (exact even with bounded history)."""
        return self._sequences_monitored

    @property
    def failures_total(self) -> int:
        """Number of failing sequences so far (exact even with bounded history)."""
        return self._failures_total

    def reset(self) -> None:
        """Forget all history (e.g. after the TRNG has been serviced)."""
        self.history = deque(maxlen=self.max_history)
        self._consecutive_failures = 0
        self._sequences_monitored = 0
        self._failures_total = 0
        self._first_failed_index = None
        self._first_suspect_index = None
        self._first_failing_tests = None
        self._failing_test_counts = {}

    # ------------------------------------------------------------------ state dict
    def state_dict(self) -> Dict[str, object]:
        """The monitor's decision state as plain JSON-safe values.

        Captures everything the health machine decides from — counters,
        first-failure attribution, the health policy for validation — but
        *not* :attr:`history`: the retained :class:`MonitorEvent` objects
        carry whole platform reports and are operational context, not
        decision state.  :meth:`load_state` restores an empty history; the
        subsequent health trajectory is bit-identical regardless.
        """
        return {
            "version": 1,
            "suspect_after": self.suspect_after,
            "fail_after": self.fail_after,
            "max_history": self.max_history,
            "consecutive_failures": self._consecutive_failures,
            "sequences_monitored": self._sequences_monitored,
            "failures_total": self._failures_total,
            "first_failed_index": self._first_failed_index,
            "first_suspect_index": self._first_suspect_index,
            "first_failing_tests": (
                None
                if self._first_failing_tests is None
                else list(self._first_failing_tests)
            ),
            # JSON object keys are strings; keep the on-disk form stable.
            "failing_test_counts": {
                str(number): count
                for number, count in self._failing_test_counts.items()
            },
        }

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` capture (history restored empty).

        The health policy (``suspect_after`` / ``fail_after``) must match
        the captured one — restoring counters under a different policy
        would silently change what the counters mean.
        """
        if state.get("version") != 1:
            raise ValueError(
                f"unsupported monitor state version {state.get('version')!r}"
            )
        for key, expected in (
            ("suspect_after", self.suspect_after),
            ("fail_after", self.fail_after),
        ):
            if state[key] != expected:
                raise ValueError(
                    f"monitor state mismatch: {key} is {state[key]!r}, "
                    f"this monitor has {expected!r}"
                )
        self.history = deque(maxlen=self.max_history)
        self._consecutive_failures = int(state["consecutive_failures"])  # type: ignore[arg-type]
        self._sequences_monitored = int(state["sequences_monitored"])  # type: ignore[arg-type]
        self._failures_total = int(state["failures_total"])  # type: ignore[arg-type]
        first_failed = state["first_failed_index"]
        self._first_failed_index = None if first_failed is None else int(first_failed)  # type: ignore[arg-type]
        first_suspect = state["first_suspect_index"]
        self._first_suspect_index = (
            None if first_suspect is None else int(first_suspect)  # type: ignore[arg-type]
        )
        failing = state["first_failing_tests"]
        self._first_failing_tests = (
            None if failing is None else tuple(int(number) for number in failing)  # type: ignore[union-attr]
        )
        counts = state["failing_test_counts"]
        self._failing_test_counts = {
            int(number): int(count) for number, count in counts.items()  # type: ignore[union-attr]
        }

    # ------------------------------------------------------------------ monitoring
    def observe(self, report: PlatformReport) -> MonitorEvent:
        """Fold one sequence report into the health state."""
        index = self._sequences_monitored
        self._sequences_monitored += 1
        if report.passed:
            self._consecutive_failures = 0
        else:
            self._consecutive_failures += 1
            self._failures_total += 1
            failing = tuple(report.failing_tests)
            if self._first_failing_tests is None:
                self._first_failing_tests = failing
            for number in failing:
                self._failing_test_counts[number] = (
                    self._failing_test_counts.get(number, 0) + 1
                )
        state = self.state
        if state is not HealthState.HEALTHY and self._first_suspect_index is None:
            self._first_suspect_index = index
        if state is HealthState.FAILED and self._first_failed_index is None:
            self._first_failed_index = index
        event = MonitorEvent(
            sequence_index=index,
            report=report,
            state=state,
            consecutive_failures=self._consecutive_failures,
        )
        self.history.append(event)
        if self.on_event is not None:
            self.on_event(event)
        return event

    def monitor(
        self,
        source: EntropySource,
        num_sequences: int,
        batch_size: Optional[int] = None,
        accelerated: bool = True,
    ) -> List[MonitorEvent]:
        """Monitor ``source`` for ``num_sequences`` consecutive n-bit sequences.

        Sequences are pulled from the source block-natively
        (:meth:`~repro.trng.source.EntropySource.generate_block`) and run
        through the vectorised functional hardware model by default;
        ``accelerated=False`` selects the RTL-fidelity path (the hardware
        observes the source one bit per clock cycle).  With
        ``batch_size > 1`` the monitor additionally drains the source in
        whole trial matrices
        (:meth:`~repro.trng.source.EntropySource.generate_matrix`) and
        evaluates each batch through
        :meth:`~repro.core.platform.OnTheFlyPlatform.evaluate_batch` (the
        engine path).  The health-state trajectory is identical on every
        path.

        With ``max_history`` set, the returned list is bounded to the most
        recent ``max_history`` events as well, so monitoring millions of
        sequences really does run in constant memory; use ``on_event`` to
        stream every event.
        """
        if num_sequences < 1:
            raise ValueError("num_sequences must be positive")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be positive (or None)")
        events: "deque[MonitorEvent] | List[MonitorEvent]"
        events = [] if self.max_history is None else deque(maxlen=self.max_history)
        if batch_size is None or batch_size <= 1:
            for _ in range(num_sequences):
                report = self.platform.evaluate_source(source, accelerated=accelerated)
                events.append(self.observe(report))
            return list(events)
        remaining = num_sequences
        while remaining > 0:
            take = min(batch_size, remaining)
            matrix = source.generate_matrix(take, self.platform.n)
            for report in self.platform.evaluate_batch(matrix, accelerated=accelerated):
                events.append(self.observe(report))
            remaining -= take
        return list(events)

    def open_stream(
        self,
        stride: Optional[int] = None,
        history_bits: Optional[int] = None,
    ) -> "MonitorStream":
        """Open a push-driven streaming session against this monitor.

        The returned :class:`MonitorStream` accepts the producer's bits in
        arbitrary-size chunks and evaluates the trailing n-bit window every
        ``stride`` new bits (default: ``n``, i.e. non-overlapping windows —
        the classic trajectory).  ``history_bits`` bounds the retained ring
        (default ``n``); it is the streaming analogue of ``max_history``,
        in bits instead of events.
        """
        return MonitorStream(self, stride=stride, history_bits=history_bits)

    def monitor_stream(
        self,
        source: EntropySource,
        num_windows: int,
        stride: Optional[int] = None,
        history_bits: Optional[int] = None,
    ) -> List[MonitorEvent]:
        """Monitor ``source`` through the streaming window-roll path.

        Pulls ``n`` bits for the first window, then ``stride`` bits per
        subsequent window, pushing each block into a fresh
        :class:`MonitorStream`; with the default ``stride == n`` this
        consumes the same source stream as :meth:`monitor` and produces the
        identical health-state trajectory, while overlapping strides
        (``stride < n``) evaluate the trailing window at finer granularity
        without ever re-scanning the overlap.  Like :meth:`monitor`, the
        returned list is bounded by ``max_history``.
        """
        if num_windows < 1:
            raise ValueError("num_windows must be positive")
        stream = self.open_stream(stride=stride, history_bits=history_bits)
        events: "deque[MonitorEvent] | List[MonitorEvent]"
        events = [] if self.max_history is None else deque(maxlen=self.max_history)
        need = self.platform.n
        for _ in range(num_windows):
            events.extend(stream.push(source.generate_block(need)))
            need = stream.stride
        return list(events)

    def monitor_until_failure(
        self,
        source: EntropySource,
        max_sequences: int = 1000,
        accelerated: bool = True,
    ) -> Iterator[MonitorEvent]:
        """Yield events until the source is FAILED or the budget is exhausted."""
        for _ in range(max_sequences):
            report = self.platform.evaluate_source(source, accelerated=accelerated)
            event = self.observe(report)
            yield event
            if event.state is HealthState.FAILED:
                return

    # ------------------------------------------------------------------ reporting
    def failure_rate(self) -> float:
        """Fraction of monitored sequences with at least one failing test.

        Computed from running totals, so it stays exact when ``max_history``
        has evicted old events.
        """
        if self._sequences_monitored == 0:
            return 0.0
        return self._failures_total / self._sequences_monitored

    @property
    def first_failed_index(self) -> Optional[int]:
        """Index of the sequence at which the source first became FAILED."""
        return self._first_failed_index

    @property
    def first_suspect_index(self) -> Optional[int]:
        """Index of the sequence at which the source first left HEALTHY."""
        return self._first_suspect_index

    @property
    def first_failing_tests(self) -> Optional[Tuple[int, ...]]:
        """NIST test numbers that flagged the first failing sequence.

        These are the detection campaign's "first detectors": the tests whose
        verdicts raised the initial alarm (None while no sequence has failed).
        """
        return self._first_failing_tests

    def failing_test_counts(self) -> Dict[int, int]:
        """Per-test attribution: test number -> number of failing sequences
        in which that test rejected the randomness hypothesis.

        Kept as running totals, so it stays exact when ``max_history`` has
        evicted old events.
        """
        return dict(self._failing_test_counts)

    def detection_latency_sequences(self) -> Optional[int]:
        """Sequences consumed until the first FAILED state (None if never)."""
        if self._first_failed_index is None:
            return None
        return self._first_failed_index + 1

    def detection_latency_bits(self) -> Optional[int]:
        """Bits consumed until the first FAILED state (None if never failed)."""
        if self._first_failed_index is None:
            return None
        return (self._first_failed_index + 1) * self.platform.n


class MonitorStream:
    """Push-driven sliding-window session over an :class:`OnTheFlyMonitor`.

    The producer pushes its live bit stream in chunks of any size (down to
    a single bit, or whole packed words); the stream keeps the trailing
    window in a :class:`~repro.engine.streaming.StreamingContext` ring and
    evaluates it through the monitor's platform every ``stride`` new bits.
    Window statistics roll incrementally — evaluation never slices or
    re-packs history — and memory stays O(``history_bits``) regardless of
    stream length (:attr:`ring_nbytes` is the live measure).

    Created via :meth:`OnTheFlyMonitor.open_stream`.  Every evaluated
    window feeds :meth:`OnTheFlyMonitor.observe`, so health policy,
    running totals and ``on_event`` callbacks behave exactly as in the
    pull-driven loop.
    """

    def __init__(
        self,
        monitor: OnTheFlyMonitor,
        stride: Optional[int] = None,
        history_bits: Optional[int] = None,
    ) -> None:
        n = monitor.platform.n
        self.stride = n if stride is None else int(stride)
        if self.stride < 1:
            raise ValueError("stride must be positive")
        capacity = n if history_bits is None else int(history_bits)
        if capacity < n:
            raise ValueError(
                f"history_bits must be at least the window size n={n}, got {capacity}"
            )
        self.monitor = monitor
        self._stream = StreamingContext(
            n, capacity_bits=capacity, backend=monitor.platform.backend
        )
        # First evaluation once the window fills; every `stride` bits after.
        self._until_eval = n
        self._windows_evaluated = 0

    # ------------------------------------------------------------------ state
    @property
    def n(self) -> int:
        """Evaluation window size (the platform's sequence length)."""
        return self._stream.window_bits

    @property
    def history_bits(self) -> int:
        """Ring capacity in bits (the retained trailing history)."""
        return self._stream.capacity_bits

    @property
    def bits_seen(self) -> int:
        """Total bits pushed so far."""
        return self._stream.total_bits

    @property
    def windows_evaluated(self) -> int:
        """Windows evaluated (and folded into the monitor) so far."""
        return self._windows_evaluated

    @property
    def ring_nbytes(self) -> int:
        """Bytes of retained per-stream state — O(history), never O(stream)."""
        return self._stream.state_nbytes

    @property
    def bits_until_next_window(self) -> int:
        """New bits needed before the next window evaluation fires."""
        return self._until_eval

    # ------------------------------------------------------------------ pushing
    def push(self, bits: Union[BitsLike, PackedMatrix]) -> List[MonitorEvent]:
        """Append a chunk of the stream; evaluate any windows it completes.

        Accepts any :data:`~repro.nist.common.BitsLike` chunk or a one-row
        :class:`~repro.engine.packed.PackedMatrix` (word-native producers).
        Returns the monitor events of the windows this chunk completed
        (empty list when the stride boundary was not reached).
        """
        if isinstance(bits, PackedMatrix):
            if bits.num_rows != 1:
                raise ValueError("MonitorStream push expects a single-row PackedMatrix")
            if bits.n <= self._until_eval:
                # Whole chunk lands before the next boundary: push the words
                # straight into the ring, no unpack at all.
                self._stream.push(bits)
                self._until_eval -= bits.n
                if self._until_eval == 0:
                    event = self._evaluate()
                    self._until_eval = self.stride
                    return [event]
                return []
            arr = bits.row(0)
        else:
            arr = to_bits(bits)
        events: List[MonitorEvent] = []
        offset = 0
        while offset < arr.size:
            take = min(self._until_eval, arr.size - offset)
            self._stream.push(arr[offset : offset + take])
            offset += take
            self._until_eval -= take
            if self._until_eval == 0:
                events.append(self._evaluate())
                self._until_eval = self.stride
        return events

    def _evaluate(self) -> MonitorEvent:
        """Evaluate the trailing window from the rolled statistics."""
        context = self._stream.window_context()
        report = self.monitor.platform.evaluate_batch(context)[0]
        self._windows_evaluated += 1
        return self.monitor.observe(report)

    def __repr__(self) -> str:
        return (
            f"MonitorStream(n={self.n}, stride={self.stride}, "
            f"history_bits={self.history_bits}, bits_seen={self.bits_seen})"
        )
