"""Shared JSON/CSV export surface of report containers.

The campaign and fleet reports ship the same artefact contract — a full
JSON round-trip (``to_dict``/``from_dict`` driven) plus a flat CSV summary
table under stable columns — and benchmark/CI tooling diffs those artefacts
across PRs.  :class:`JsonCsvExportMixin` keeps the serialisation in one
place so a format tweak (indentation, quoting, trailing newline) cannot be
applied to one report and silently missed in the other.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Sequence, Tuple

__all__ = ["JsonCsvExportMixin"]


class JsonCsvExportMixin:
    """JSON + CSV export for report dataclasses.

    Consumers provide ``to_dict()`` / ``from_dict()`` (the full-fidelity
    round trip), ``summary_rows()`` (flat dict rows) and the class attribute
    :attr:`SUMMARY_COLUMNS` (the stable CSV column contract); the mixin
    derives the artefact I/O from those.
    """

    #: CSV column contract; consumers bind this to their summary schema.
    SUMMARY_COLUMNS: Tuple[str, ...] = ()

    # ---- provided by the consumer --------------------------------------
    def to_dict(self) -> Dict[str, object]:  # pragma: no cover - interface
        raise NotImplementedError

    @classmethod
    def from_dict(cls, data: Dict[str, object]):  # pragma: no cover - interface
        raise NotImplementedError

    def summary_rows(self) -> List[Dict[str, object]]:  # pragma: no cover - interface
        raise NotImplementedError

    # ---- JSON ----------------------------------------------------------
    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str):
        return cls.from_dict(json.loads(text))

    def save_json(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    # ---- CSV -----------------------------------------------------------
    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(self.SUMMARY_COLUMNS))
        writer.writeheader()
        for row in self.summary_rows():
            writer.writerow(row)
        return buffer.getvalue()

    def save_csv(self, path) -> None:
        with open(path, "w", newline="") as handle:
            handle.write(self.to_csv())
