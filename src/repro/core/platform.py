"""The embedded HW/SW testing platform (Fig. 1 of the paper).

:class:`OnTheFlyPlatform` wires together the three actors of the paper's
testing environment:

* the TRNG (any :class:`repro.trng.EntropySource`),
* the unified hardware testing block, which observes every generated bit
  while the TRNG runs,
* the software platform (microcontroller model), which reads the hardware's
  counter values after each n-bit sequence and accepts or rejects the
  randomness hypothesis against precomputed critical values.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.configs import DesignPoint, get_design
from repro.core.results import PlatformReport
from repro.engine.context import (
    DEFAULT_BACKEND,
    BatchContext,
    SequenceContext,
    validate_backend,
)
from repro.engine.packed import PackedMatrix
from repro.hwtests.block import UnifiedTestingBlock
from repro.hwtests.parameters import SharingOptions
from repro.nist.common import BitsLike, to_bits
from repro.sw.routines import SoftwareVerifier
from repro.trng.source import EntropySource

__all__ = ["OnTheFlyPlatform"]


class OnTheFlyPlatform:
    """HW/SW co-designed on-the-fly randomness testing platform.

    Parameters
    ----------
    design:
        A :class:`~repro.core.configs.DesignPoint` or the name of one of the
        eight standard design points (e.g. ``"n65536_medium"``).
    alpha:
        Level of significance of the statistical tests (NIST recommends
        0.001–0.01).  Only the software depends on it.
    sharing:
        The resource-sharing tricks applied to the hardware block (all on by
        default; the ablation benchmark switches them off selectively).
    word_bits:
        Word width of the software platform (16 in the paper).
    backend:
        Compute backend of the batch path's shared statistics: ``"packed"``
        (default) runs them on the 64-bits-per-word kernels of
        :mod:`repro.engine.packed`; ``"uint8"`` forces the byte-per-bit
        reference paths.  Verdicts are bit-identical either way.
    """

    def __init__(
        self,
        design: "DesignPoint | str" = "n65536_high",
        alpha: float = 0.01,
        sharing: SharingOptions = SharingOptions(),
        word_bits: int = 16,
        backend: str = DEFAULT_BACKEND,
    ):
        if isinstance(design, str):
            design = get_design(design)
        self.design = design
        self.alpha = alpha
        self.sharing = sharing
        self.backend = validate_backend(backend)
        params = design.parameters
        self.hardware = UnifiedTestingBlock(
            params, tests=design.tests, sharing=sharing, bus_width=word_bits
        )
        self.software = SoftwareVerifier(
            params, tests=design.tests, alpha=alpha, word_bits=word_bits
        )
        #: Execution path of the most recent :meth:`evaluate_batch` call:
        #: "batched" when the sequences shared one vectorised BatchContext,
        #: "inline" on the per-sequence fallback (mixed/solo inputs), None
        #: before the first batch call.  Campaign reports surface this to
        #: prove the pool-free batch path was taken.
        self.last_execution_path: Optional[str] = None

    # ------------------------------------------------------------------ info
    @property
    def n(self) -> int:
        """Sequence length of the configured design point."""
        return self.design.n

    @property
    def tests(self) -> Sequence[int]:
        """NIST test numbers implemented by this platform instance."""
        return self.design.tests

    def set_alpha(self, alpha: float) -> None:
        """Change the level of significance.

        Demonstrates the paper's flexibility argument: the hardware block is
        untouched; only the software's critical-value table is rebuilt.
        """
        self.alpha = alpha
        self.software = SoftwareVerifier(
            self.design.parameters,
            tests=self.design.tests,
            alpha=alpha,
            word_bits=self.software.processor.word_bits,
        )

    # ------------------------------------------------------------------ evaluation
    def evaluate_sequence(self, bits: BitsLike, accelerated: bool = True) -> PlatformReport:
        """Run one complete n-bit sequence through hardware and software.

        The default feeds the functional (vectorised) hardware model;
        ``accelerated=False`` selects the cycle-accurate bit-serial model
        for RTL-fidelity runs.  The final register contents — and therefore
        the verdicts — are identical (see
        ``UnifiedTestingBlock.accelerated_process_sequence``), only the
        simulation speed differs.
        """
        arr = to_bits(bits)
        if arr.size != self.n:
            raise ValueError(f"expected {self.n} bits, got {arr.size}")
        self.hardware.reset()
        if accelerated:
            self.hardware.accelerated_process_sequence(arr)
        else:
            self.hardware.process_sequence(arr)
        return self._verify()

    def evaluate_batch(self, sequences, accelerated: bool = True) -> List[PlatformReport]:
        """Evaluate a batch of complete n-bit sequences.

        This is the platform-side entry point of the engine's batch path:
        continuous monitoring hands over whole batches drawn from the source
        instead of one sequence at a time, and each sequence runs through the
        vectorised functional hardware model (``accelerated=True``, the
        default) rather than the bit-serial one.  The verdicts are identical
        either way; only the simulation speed differs.

        ``sequences`` may be any iterable of ``BitsLike`` sequences, the
        zero-copy fast path used by the monitor and campaign runner — a
        2-D ``(num_sequences, n)`` uint8 matrix straight from
        :meth:`~repro.trng.source.EntropySource.generate_matrix` — a
        prepacked :class:`~repro.engine.packed.PackedMatrix` from
        ``generate_matrix(..., packed=True)``, or a prebuilt
        :class:`~repro.engine.context.BatchContext` (e.g. the preseeded
        trailing window of a streaming context), which is used as-is so
        statistics already rolled into it are never recomputed.

        On the accelerated path the whole batch shares one
        :class:`~repro.engine.context.BatchContext` (built on the platform's
        configured :attr:`backend`), so the hardware units' shared
        statistics are computed in single vectorised passes over the batch
        instead of once per sequence.
        """
        batch: Optional[BatchContext] = None
        if isinstance(sequences, BatchContext):
            batch = sequences
        elif isinstance(sequences, PackedMatrix):
            batch = BatchContext(sequences, backend=self.backend)
        elif isinstance(sequences, np.ndarray):
            # as_matrix validates shape (2-D) and 0/1 content.
            batch = BatchContext(BatchContext.as_matrix(sequences), backend=self.backend)
        if batch is not None:
            if batch.n != self.n and batch.num_sequences:
                raise ValueError(f"expected {self.n} bits, got {batch.n}")
            contexts: List[SequenceContext] = list(batch.contexts())
        else:
            arrays = [to_bits(sequence) for sequence in sequences]
            for arr in arrays:
                if arr.size != self.n:
                    raise ValueError(f"expected {self.n} bits, got {arr.size}")
            if len(arrays) > 1 and len({arr.size for arr in arrays}) == 1:
                batch = BatchContext(np.vstack(arrays), backend=self.backend)
                contexts = list(batch.contexts())
            else:
                contexts = [SequenceContext(arr) for arr in arrays]
        self.last_execution_path = "batched" if batch is not None else "inline"
        if not accelerated:
            return [
                self.evaluate_sequence(context.bits, accelerated=False)
                for context in contexts
            ]
        from repro.hwtests.functional import fast_load_block_from_context

        reports = []
        for context in contexts:
            self.hardware.reset()
            fast_load_block_from_context(self.hardware, context)
            reports.append(self._verify())
        return reports

    def evaluate_source(self, source: EntropySource, accelerated: bool = True) -> PlatformReport:
        """Draw one n-bit sequence from ``source`` and evaluate it.

        The default pulls a whole n-bit block from the source
        (:meth:`~repro.trng.source.EntropySource.generate_block`) and feeds
        it to the vectorised functional hardware model.
        ``accelerated=False`` selects the RTL-fidelity path instead — the
        hardware observes the source one bit per clock cycle, exactly like
        the paper's deployment — at per-bit Python cost.  Both paths
        consume the same source stream and produce identical verdicts.
        """
        if accelerated:
            return self.evaluate_sequence(source.generate_block(self.n), accelerated=True)
        self.hardware.reset()
        for _ in range(self.n):
            self.hardware.process_bit(source.next_bit())
        self.hardware.finalize()
        return self._verify()

    def _verify(self) -> PlatformReport:
        """Software pass over the hardware's register file."""
        self.software.processor.reset_counts()
        verdicts = self.software.verify(self.hardware.register_file)
        violations = self.software.consistency_check(self.hardware.register_file)
        return PlatformReport(
            design_name=self.design.name,
            n=self.n,
            alpha=self.alpha,
            verdicts=verdicts,
            hardware_values=self.hardware.hardware_values(),
            instruction_counts=self.software.instruction_counts(),
            consistency_violations=violations,
        )

    def __repr__(self) -> str:
        return (
            f"OnTheFlyPlatform(design={self.design.name!r}, n={self.n}, "
            f"tests={tuple(self.tests)}, alpha={self.alpha})"
        )
